package cq

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
	"github.com/diorama/continual/internal/workload"
)

// tmplWorld runs one commit script under one refresh mode with template
// sharing on or off, and returns the per-CQ notification transcript plus
// the final metrics snapshot. The CQ set mixes three members of a range
// template, two of an equality template, two of a join template, a
// StopAfterN member, an update-counting trigger, a ModeComplete member,
// and a non-templatable query that must coexist unshared.
func tmplWorld(t *testing.T, shared bool, mode string, steps int) (map[string][]string, obs.Snapshot) {
	t.Helper()
	reg := obs.NewRegistry()
	s := storage.NewStore()
	s.Instrument(reg)
	for _, table := range []string{"s1", "s2"} {
		if err := s.CreateTable(table, workload.StockSchema()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{UseDRA: true, AutoGC: true, Metrics: reg, ShareTemplates: shared}
	switch mode {
	case "push":
		cfg.Push = true
	case "mixed":
		cfg.Push = true
		cfg.PushQueue = 1
		cfg.Parallelism = 1
	}
	m := NewManagerConfig(s, cfg)
	defer func() { _ = m.Close() }()

	g1 := workload.NewStocks(s, "s1", 11, workload.DefaultMix)
	g2 := workload.NewStocks(s, "s2", 11, workload.DefaultMix)
	if err := g1.Seed(40); err != nil {
		t.Fatal(err)
	}
	if err := g2.Seed(40); err != nil {
		t.Fatal(err)
	}

	defs := []Def{
		{Name: "p50", Query: "SELECT * FROM s1 WHERE price > 50"},
		{Name: "p120", Query: "SELECT * FROM s1 WHERE price > 120"},
		{Name: "p80", Query: "SELECT * FROM s1 WHERE price > 80"},
		{Name: "eqA", Query: "SELECT * FROM s1 WHERE name = 'S00003'"},
		{Name: "eqB", Query: "SELECT * FROM s1 WHERE name = 'S00017'"},
		{Name: "j30", Query: "SELECT s1.name, s1.price FROM s1, s2 WHERE s1.name = s2.name AND s1.price > 30"},
		{Name: "j90", Query: "SELECT s1.name, s1.price FROM s1, s2 WHERE s1.name = s2.name AND s1.price > 90"},
		{Name: "stop3", Query: "SELECT * FROM s1 WHERE price > 60", Stop: sql.StopSpec{AfterN: 3}},
		{Name: "upd3", Query: "SELECT * FROM s1 WHERE price > 20",
			Trigger: sql.TriggerSpec{Kind: sql.TriggerUpdates, Updates: 3}},
		{Name: "compl", Query: "SELECT * FROM s2 WHERE price > 100", Mode: sql.ModeComplete},
		{Name: "plain", Query: "SELECT * FROM s1"},
	}
	var mu sync.Mutex
	transcript := make(map[string][]string)
	for _, def := range defs {
		if _, err := m.Register(def); err != nil {
			t.Fatal(err)
		}
		name := def.Name
		if _, err := m.SubscribeFunc(name, func(n Notification, closed bool) {
			if closed {
				return
			}
			mu.Lock()
			transcript[name] = append(transcript[name], renderNotification(n))
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}

	// As in e2eWorld: the logical clock ticks only on commits and each
	// mode quiesces after every commit, so every refresh runs at a
	// commit timestamp with an identical delta window in every world.
	for i := 0; i < steps; i++ {
		g := g1
		if i%3 == 1 {
			g = g2
		}
		if err := g.Batch(1 + i%4); err != nil {
			t.Fatal(err)
		}
		m.FlushPush()
		if mode != "push" {
			if _, err := m.Poll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.FlushPush()
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return transcript, reg.Snapshot()
}

// TestTemplateSharingEquivalence is the tenancy-transparency property:
// with ShareTemplates on, every CQ's notification transcript — Seq,
// ExecTS, full deltas, termination — must be byte-identical to the one
// its private plan would have produced, under poll-, push-, and
// overflow-driven refresh. Run with -race this also exercises the
// group-step/dispatch pipeline concurrently.
func TestTemplateSharingEquivalence(t *testing.T) {
	const steps = 48
	names := []string{"p50", "p120", "p80", "eqA", "j30", "j90", "stop3", "upd3", "compl", "plain"}
	for _, mode := range []string{"poll", "push", "mixed"} {
		base, _ := tmplWorld(t, false, mode, steps)
		for _, n := range []string{"p50", "j30", "stop3", "upd3"} {
			if len(base[n]) == 0 {
				t.Fatalf("%s: unshared transcript for %q is empty; the script is too tame", mode, n)
			}
		}
		got, snap := tmplWorld(t, true, mode, steps)
		// The property must not hold vacuously: sharing actually engaged.
		if snap.Counter("cq.template.shared_registrations") < 7 {
			t.Fatalf("%s: only %d shared registrations; template extraction regressed",
				mode, snap.Counter("cq.template.shared_registrations"))
		}
		if snap.Counter("cq.template.steps") == 0 {
			t.Fatalf("%s: shared world never stepped a template", mode)
		}
		for _, name := range names {
			want, have := base[name], got[name]
			if len(have) != len(want) {
				t.Errorf("%s: %q delivered %d notifications shared, %d unshared",
					mode, name, len(have), len(want))
				continue
			}
			for i := range want {
				if have[i] != want[i] {
					t.Errorf("%s: %q notification %d:\n  unshared: %s\n  shared:   %s",
						mode, name, i, want[i], have[i])
				}
			}
		}
	}
}

// TestTemplateDispatchFanout is the O(matches) claim on the dispatch
// stage: with many members on one template, a committed row must reach
// its matching members through the parameter index without touching the
// rest — candidates stays proportional to matches, not to members.
func TestTemplateDispatchFanout(t *testing.T) {
	const members = 200
	for _, tc := range []struct {
		kind    string
		matched string
		query   func(i int) string
	}{
		{"equality", "q0007", func(i int) string {
			return fmt.Sprintf("SELECT * FROM stocks WHERE name = 'N%04d'", i)
		}},
		{"range", "q0000", func(i int) string {
			return fmt.Sprintf("SELECT * FROM stocks WHERE price > %d", 1000+i)
		}},
	} {
		t.Run(tc.kind, func(t *testing.T) {
			s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
			reg := obs.NewRegistry()
			m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Metrics: reg, ShareTemplates: true})
			defer func() { _ = m.Close() }()
			for i := 0; i < members; i++ {
				if _, err := m.Register(Def{Name: fmt.Sprintf("q%04d", i), Query: tc.query(i)}); err != nil {
					t.Fatal(err)
				}
			}
			if g := reg.Snapshot().Gauge("cq.templates"); g != 1 {
				t.Fatalf("templates = %d, want 1", g)
			}
			// One row that exactly one member selects: name N0007, or
			// price 1000.5 (above 1000, at or below every other bound).
			insertStock(t, s, "N0007", 1000.5)
			if _, err := m.Poll(); err != nil {
				t.Fatal(err)
			}
			snap := reg.Snapshot()
			cand := snap.Counter("cq.template.dispatch_candidates")
			match := snap.Counter("cq.template.dispatch_matches")
			if match != 1 {
				t.Fatalf("matches = %d, want 1", match)
			}
			if cand != match {
				t.Fatalf("candidates = %d for %d matches; index over-approximates on the primary slot", cand, match)
			}
			st, err := m.State(tc.matched)
			if err != nil {
				t.Fatal(err)
			}
			if st.Seq != 2 || st.ResultLen != 1 || st.Template == 0 || st.TemplateMates != members {
				t.Fatalf("matched member state = %+v", st)
			}
		})
	}
}

// nameFaultJournal fails CQExecuted for one CQ while armed, letting a
// test break exactly one member of a shared template: the journal write
// happens after the shared fold but before any member state mutates, so
// the fault exercises the retry-against-intact-buffers path.
type nameFaultJournal struct {
	mu    sync.Mutex
	name  string
	armed bool
}

var _ Journal = (*nameFaultJournal)(nil)

func (j *nameFaultJournal) arm(on bool) {
	j.mu.Lock()
	j.armed = on
	j.mu.Unlock()
}

func (j *nameFaultJournal) CQRegistered(wal.CQEntry) error { return nil }
func (j *nameFaultJournal) CQDropped(string) error         { return nil }

func (j *nameFaultJournal) CQExecuted(name string, _ int, _ vclock.Timestamp, _ *delta.Delta, _ bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.armed && name == j.name {
		return errors.New("injected journal fault")
	}
	return nil
}

// TestTemplateQuarantineIsolation: a member whose refreshes fail is
// quarantined on its own breaker; its template-mates keep refreshing
// from the same shared plan, and when the faulty member heals its probe
// folds the buffered template batches into one gap-free catch-up.
func TestTemplateQuarantineIsolation(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	advance := func(d time.Duration) { nowMu.Lock(); now = now.Add(d); nowMu.Unlock() }

	j := &nameFaultJournal{name: "bad"}
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{
		UseDRA: true, AutoGC: true, Parallelism: 1, Metrics: reg,
		ShareTemplates: true, Journal: j,
		Guard: guard.Policy{FailureThreshold: 2, BackoffBase: time.Second, BackoffMax: time.Minute, Now: clock},
	})
	defer func() { _ = m.Close() }()

	for _, def := range []Def{
		{Name: "good", Query: "SELECT * FROM stocks WHERE price > 100", Trigger: updatesTrigger()},
		{Name: "bad", Query: "SELECT * FROM stocks WHERE price > 200", Trigger: updatesTrigger()},
	} {
		if _, err := m.Register(def); err != nil {
			t.Fatal(err)
		}
	}
	stGood, _ := m.State("good")
	stBad, _ := m.State("bad")
	if stGood.Template == 0 || stGood.Template != stBad.Template {
		t.Fatalf("expected one shared template: %#x vs %#x", stGood.Template, stBad.Template)
	}

	// Two failing rounds trip bad's threshold-2 breaker; good delivers
	// both rounds untouched.
	j.arm(true)
	insertStock(t, s, "F1", 250)
	if _, err := m.Poll(); err == nil {
		t.Fatal("first faulty poll returned nil error")
	}
	insertStock(t, s, "F2", 260)
	if _, err := m.Poll(); err == nil {
		t.Fatal("second faulty poll returned nil error")
	}
	stBad, _ = m.State("bad")
	if stBad.Health != "quarantined" || stBad.Seq != 1 {
		t.Fatalf("bad after 2 failures: health=%q seq=%d", stBad.Health, stBad.Seq)
	}
	stGood, _ = m.State("good")
	if stGood.Health != "healthy" || stGood.Seq != 3 || stGood.ResultLen != 2 {
		t.Fatalf("good was affected by its template-mate's fault: %+v", stGood)
	}

	// While bad is quarantined the group keeps stepping for good.
	insertStock(t, s, "F3", 270)
	if _, err := m.Poll(); err != nil {
		t.Fatalf("poll with quarantined member: %v", err)
	}
	stGood, _ = m.State("good")
	if stGood.Seq != 4 || stGood.ResultLen != 3 {
		t.Fatalf("good stalled during mate's quarantine: %+v", stGood)
	}

	// Heal: fault removed, backoff served — the probe folds every
	// buffered template batch into one Seq-2 catch-up over the whole
	// missed window (F1, F2, F3 all exceed 200).
	j.arm(false)
	advance(2 * time.Second)
	if _, err := m.Poll(); err != nil {
		t.Fatalf("probe poll: %v", err)
	}
	stBad, _ = m.State("bad")
	if stBad.Health != "healthy" || stBad.Seq != 2 || stBad.ResultLen != 3 {
		t.Fatalf("bad did not catch up differentially: %+v", stBad)
	}
}

// TestTemplateChurnRace hammers register/drop against concurrent
// commits, polls and push flushes on one shared template. Run with
// -race. After the dust settles the registry must be consistent: no
// leaked members, active counts agreeing with the member tables, and
// the surviving stable member's sequence gap-free (no double delivery).
func TestTemplateChurnRace(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": workload.StockSchema()})
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Push: true, ShareTemplates: true})
	defer func() { _ = m.Close() }()

	// NotifyEmpty makes every refresh deliver, so a consecutive-Seq
	// check at the subscriber catches both lost and double deliveries.
	if _, err := m.Register(Def{Name: "stable", Query: "SELECT * FROM stocks WHERE price > 100", NotifyEmpty: true}); err != nil {
		t.Fatal(err)
	}
	var seqMu sync.Mutex
	lastSeq := 1
	gaps := 0
	if _, err := m.SubscribeFunc("stable", func(n Notification, closed bool) {
		if closed {
			return
		}
		seqMu.Lock()
		if n.Seq != lastSeq+1 {
			gaps++
		}
		lastSeq = n.Seq
		seqMu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}

	const (
		churners  = 4
		perChurn  = 50
		writes    = 150
		pollEvery = 10
	)
	var wg sync.WaitGroup
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(c int) { // guarded: test goroutine, failures reported via t
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			for i := 0; i < perChurn; i++ {
				name := fmt.Sprintf("churn-%d-%d", c, i)
				q := fmt.Sprintf("SELECT * FROM stocks WHERE price > %d", rng.Intn(400))
				if _, err := m.Register(Def{Name: name, Query: q}); err != nil {
					t.Errorf("register %s: %v", name, err)
					return
				}
				if rng.Intn(4) > 0 {
					if err := m.Drop(name); err != nil {
						t.Errorf("drop %s: %v", name, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() { // guarded: test goroutine, failures reported via t
		defer wg.Done()
		g := workload.NewStocks(s, "stocks", 3, workload.DefaultMix)
		g.PriceMax = 400
		for i := 0; i < writes; i++ {
			if err := g.Batch(2); err != nil {
				t.Errorf("batch: %v", err)
				return
			}
			m.FlushPush()
			if i%pollEvery == 0 {
				if _, err := m.Poll(); err != nil {
					t.Errorf("poll: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	m.FlushPush()
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}

	// Registry invariants: every group member belongs to a live,
	// grouped instance; every grouped instance is a member of its
	// group; active counts match.
	m.mu.Lock()
	grouped := 0
	for name, inst := range m.cqs {
		if inst.group == nil {
			continue
		}
		grouped++
		inst.group.mu.Lock()
		mem := inst.group.members[name]
		ok := mem != nil && mem.inst == inst
		inst.group.mu.Unlock()
		if !ok {
			t.Errorf("instance %q points at a group that does not list it", name)
		}
	}
	total := 0
	for fp, g := range m.templates {
		g.mu.Lock()
		n := len(g.members)
		act := g.active.Load()
		for name, mem := range g.members {
			inst, live := m.cqs[name]
			if !live || inst != mem.inst {
				t.Errorf("template %#x leaked member %q", fp, name)
			}
			if mem.removed {
				t.Errorf("template %#x lists removed member %q", fp, name)
			}
		}
		g.mu.Unlock()
		if int64(n) != act {
			t.Errorf("template %#x: %d members but active=%d", fp, n, act)
		}
		total += n
	}
	m.mu.Unlock()
	if total != grouped {
		t.Errorf("%d grouped instances but %d group members", grouped, total)
	}
	seqMu.Lock()
	defer seqMu.Unlock()
	if gaps != 0 {
		t.Errorf("stable CQ saw %d sequence gaps/duplicates", gaps)
	}
}

// TestTemplateDurableResume: template membership round-trips the
// checkpoint cycle. Resumed members rejoin (or recreate) their group,
// run one private catch-up over the missed window, and then stream from
// the shared plan with Seq continuing where the snapshot stopped.
func TestTemplateDurableResume(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	cfg := Config{UseDRA: true, AutoGC: true, ShareTemplates: true}
	m1 := NewManagerConfig(s, cfg)
	for _, def := range []Def{
		{Name: "a", Query: "SELECT * FROM stocks WHERE price > 100"},
		{Name: "b", Query: "SELECT * FROM stocks WHERE price > 200"},
	} {
		if _, err := m1.Register(def); err != nil {
			t.Fatal(err)
		}
	}
	insertStock(t, s, "R1", 150)
	if _, err := m1.Poll(); err != nil {
		t.Fatal(err)
	}
	entries, err := m1.SnapshotRegistry(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	// The "crash window": commits after the snapshot, before resume.
	insertStock(t, s, "R2", 250)

	m2 := NewManagerConfig(s, cfg)
	defer func() { _ = m2.Close() }()
	for _, e := range entries {
		if err := m2.Resume(e); err != nil {
			t.Fatal(err)
		}
	}
	stA, _ := m2.State("a")
	stB, _ := m2.State("b")
	if stA.Template == 0 || stA.Template != stB.Template || stA.TemplateMates != 2 {
		t.Fatalf("resume broke sharing: a=%+v b=%+v", stA, stB)
	}

	// First poll: the pendingSync catch-up covers the crash window.
	if _, err := m2.Poll(); err != nil {
		t.Fatal(err)
	}
	stA, _ = m2.State("a")
	stB, _ = m2.State("b")
	// Seq advances on every refresh, delivered or not: both were at 2
	// when the snapshot cut (b's first poll netted an empty delta).
	if stA.Seq != 3 || stA.ResultLen != 2 {
		t.Fatalf("a after catch-up: %+v", stA)
	}
	if stB.Seq != 3 || stB.ResultLen != 1 {
		t.Fatalf("b after catch-up: %+v", stB)
	}

	// Second poll: pendingSync is done, members stream from the group.
	insertStock(t, s, "R3", 300)
	if _, err := m2.Poll(); err != nil {
		t.Fatal(err)
	}
	stA, _ = m2.State("a")
	stB, _ = m2.State("b")
	if stA.Seq != 4 || stA.ResultLen != 3 || stB.Seq != 4 || stB.ResultLen != 2 {
		t.Fatalf("post-resume streaming wrong: a=%+v b=%+v", stA, stB)
	}
}

// TestTemplateGroupReap: dropping the last member closes the shared
// prepared plan and retires the template, and re-registering rebuilds
// it from scratch.
func TestTemplateGroupReap(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Metrics: reg, ShareTemplates: true})
	defer func() { _ = m.Close() }()
	for i, q := range []string{
		"SELECT * FROM stocks WHERE price > 10",
		"SELECT * FROM stocks WHERE price > 20",
	} {
		if _, err := m.Register(Def{Name: fmt.Sprintf("q%d", i), Query: q}); err != nil {
			t.Fatal(err)
		}
	}
	if g := reg.Snapshot().Gauge("cq.templates"); g != 1 {
		t.Fatalf("templates = %d, want 1", g)
	}
	if err := m.Drop("q0"); err != nil {
		t.Fatal(err)
	}
	if g := reg.Snapshot().Gauge("cq.templates"); g != 1 {
		t.Fatalf("templates after first drop = %d, want 1", g)
	}
	if err := m.Drop("q1"); err != nil {
		t.Fatal(err)
	}
	if g := reg.Snapshot().Gauge("cq.templates"); g != 0 {
		t.Fatalf("templates after last drop = %d, want 0 (group leaked)", g)
	}
	if _, err := m.Register(Def{Name: "q2", Query: "SELECT * FROM stocks WHERE price > 30"}); err != nil {
		t.Fatal(err)
	}
	insertStock(t, s, "X", 50)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.State("q2"); st.Seq != 2 || st.ResultLen != 1 || st.Template == 0 {
		t.Fatalf("rebuilt template broken: %+v", st)
	}
}
