package dra

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// cachedOperand is one join operand's pre-state kept across refreshes:
// the operand subtree's output as of ts, plus mutable hash indexes on
// every join-key column set it has been probed with. Where the
// transient truth table re-executes the operand against a historical
// snapshot and rebuilds a hash index per term, the cache advances the
// replica by the operand's own signed delta and keeps the indexes
// maintained — the same telescoping advance IncrementalJoin uses.
type cachedOperand struct {
	rel     *relation.Relation
	view    *delta.Signed // +1 signed view of rel, built lazily, dropped on advance
	indexes map[uint64]*relation.MutableIndex

	// ts is the timestamp the replica reflects: rel equals the operand
	// subtree executed at ts.
	ts vclock.Timestamp
	// version is the operand table's change counter from the refresh
	// that advanced the entry to ts — snapshotted by the caller BEFORE
	// that refresh's timestamp was issued (Context.Versions), which is
	// what makes a later equality check prove the table untouched in
	// between. verOK marks the snapshot as present.
	version uint64
	verOK   bool
}

// signedView returns the replica as a +1 signed relation for term
// enumeration (seeding and nested-loop steps).
func (c *cachedOperand) signedView() *delta.Signed {
	if c.view == nil {
		out := &delta.Signed{Schema: c.rel.Schema(), Rows: make([]delta.SignedRow, 0, c.rel.Len())}
		for _, t := range c.rel.Tuples() {
			out.Rows = append(out.Rows, delta.SignedRow{TID: t.TID, Values: t.Values, Sign: +1})
		}
		c.view = out
	}
	return c.view
}

// index returns the maintained hash index on cols, building it on first
// use (counted as a miss: the build scans the replica once; afterwards
// refreshes probe it for free).
func (c *cachedOperand) index(cols []int, st *Stats) *relation.MutableIndex {
	h := keySetHash(cols)
	ix := c.indexes[h]
	if ix == nil {
		ix = relation.NewMutableIndex(cols)
		for _, t := range c.rel.Tuples() {
			ix.Add(t)
		}
		c.indexes[h] = ix
		st.IndexCacheMisses++
	}
	return ix
}

// opCache is one prepared join group's cross-refresh operand cache. It
// is owned by a single Prepared and touched only inside its Step (the
// cq manager serializes refreshes per CQ under the instance lock);
// nothing here is safe for concurrent use.
type opCache struct {
	engine *Engine
	cj     *compiledJoin
	tables []string // operand scan table; "" when the operand has several
	ents   []*cachedOperand
}

func newOpCache(e *Engine, cj *compiledJoin) *opCache {
	tables := make([]string, len(cj.ops))
	for i, op := range cj.ops {
		if scans := algebra.Tables(op.plan); len(scans) == 1 {
			tables[i] = scans[0].Table
		}
	}
	return &opCache{engine: e, cj: cj, tables: tables, ents: make([]*cachedOperand, len(cj.ops))}
}

// pre returns operand i's pre-state entry for a refresh whose window
// starts at ctx.LastTS. Validation is two-tier:
//
//   - an entry advanced to exactly ctx.LastTS by the previous refresh
//     is current (the common case: consecutive refreshes);
//   - otherwise, an unchanged table change-counter between the entry's
//     refresh and this one proves the base — hence the operand output —
//     identical at every timestamp in between, so only the timestamp
//     tag moves.
//
// Anything else is rebuilt from the pre-state snapshot, which is the
// transient truth table's cost.
func (c *opCache) pre(i int, ctx *Context, st *Stats) (*cachedOperand, error) {
	if ent := c.ents[i]; ent != nil {
		if ent.ts == ctx.LastTS {
			st.IndexCacheHits++
			return ent, nil
		}
		if ent.verOK && ctx.Versions != nil && c.tables[i] != "" {
			if v, ok := ctx.Versions[c.tables[i]]; ok && v == ent.version {
				ent.ts = ctx.LastTS
				st.IndexCacheHits++
				return ent, nil
			}
		}
	}
	ex := algebra.NewExecutor(ctx.Pre)
	ex.UseHashJoin = c.engine.UseHashJoin
	rel, err := ex.Execute(c.cj.ops[i].plan)
	if err != nil {
		return nil, fmt.Errorf("dra: operand pre-state: %w", err)
	}
	st.PreTuplesScanned += rel.Len()
	st.IndexCacheMisses++
	ent := &cachedOperand{rel: rel, indexes: make(map[uint64]*relation.MutableIndex), ts: ctx.LastTS}
	c.ents[i] = ent
	return ent, nil
}

// advance folds the refresh's operand deltas into every entry that is
// current at ctx.LastTS, moving it to execTS — deletions drop the tuple
// from the replica and every index, anything else upserts (a signed
// modification arrives as -old before +new, so index removal precedes
// the re-add, exactly as in IncrementalJoin's replica advance). deltas
// may be nil for a skipped refresh: all filtered deltas were empty, so
// the replicas are already the state at execTS and only the tags move.
//
// Entries from older refreshes that were not revalidated this round are
// left alone; the next pre() call version-checks or rebuilds them.
func (c *opCache) advance(ctx *Context, execTS vclock.Timestamp, deltas []*delta.Signed) {
	for i, ent := range c.ents {
		if ent == nil || ent.ts != ctx.LastTS {
			continue
		}
		if deltas != nil && deltas[i] != nil && len(deltas[i].Rows) > 0 {
			for _, r := range deltas[i].Rows {
				tup := relation.Tuple{TID: r.TID, Values: r.Values}
				if r.Sign < 0 {
					_ = ent.rel.Delete(r.TID)
					for _, ix := range ent.indexes {
						ix.Remove(tup)
					}
				} else {
					_ = ent.rel.Upsert(tup)
					for _, ix := range ent.indexes {
						ix.Add(tup)
					}
				}
			}
			ent.view = nil
		}
		ent.ts = execTS
		if c.tables[i] != "" && ctx.Versions != nil {
			if v, ok := ctx.Versions[c.tables[i]]; ok {
				ent.version = v
				ent.verOK = true
				continue
			}
		}
		ent.verOK = false
	}
}

// skipTo moves current entries to execTS without folding anything in —
// the relevant-update refinement proved every operand's filtered delta
// empty, so the replicas already equal the state at execTS.
func (c *opCache) skipTo(ctx *Context, execTS vclock.Timestamp) {
	c.advance(ctx, execTS, nil)
}

// invalidate drops every entry (used when a strategy re-pick returns to
// the truth table after the replicas went unmaintained).
func (c *opCache) invalidate() {
	for i := range c.ents {
		c.ents[i] = nil
	}
}
