package delta

import (
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Signed is the signed-multiset view of a differential relation that the
// DRA's differential operators (DiffSelect, DiffProj, DiffJoin) compute
// over. Each modification row decomposes into a -1 entry for the old
// tuple and a +1 entry for the new tuple; an insertion is +1; a deletion
// is -1. Signed deltas compose under select, project and join by simple
// sign arithmetic (the sign of a joined tuple is the product of the input
// signs), which is what makes the truth-table expansion of Algorithm 1
// exact for general updates.
type Signed struct {
	Schema relation.Schema
	Rows   []SignedRow
}

// SignedRow is one signed tuple.
type SignedRow struct {
	TID    relation.TID
	Values []relation.Value
	Sign   int // +1 or -1
}

// ToSigned converts a differential relation to its signed form.
func (d *Delta) ToSigned() *Signed {
	out := &Signed{Schema: d.schema, Rows: make([]SignedRow, 0, len(d.rows))}
	for _, r := range d.rows {
		switch r.Kind() {
		case Insert:
			out.Rows = append(out.Rows, SignedRow{TID: r.TID, Values: r.New, Sign: +1})
		case Delete:
			out.Rows = append(out.Rows, SignedRow{TID: r.TID, Values: r.Old, Sign: -1})
		case Modify:
			out.Rows = append(out.Rows,
				SignedRow{TID: r.TID, Values: r.Old, Sign: -1},
				SignedRow{TID: r.TID, Values: r.New, Sign: +1},
			)
		}
	}
	return out
}

// Len returns the number of signed rows.
func (s *Signed) Len() int { return len(s.Rows) }

// Normalize cancels matching +1/-1 rows with identical values, summing
// multiplicities per value-key and emitting one row per nonzero net count.
// The result uses value-hash tids so equal tuples merge.
func (s *Signed) Normalize() *Signed {
	type acc struct {
		values []relation.Value
		count  int
		order  int
	}
	sums := make(map[uint64]*acc, len(s.Rows))
	orderN := 0
	for _, r := range s.Rows {
		h := relation.HashValues(r.Values)
		a, ok := sums[h]
		if !ok {
			a = &acc{values: r.Values, order: orderN}
			orderN++
			sums[h] = a
		}
		a.count += r.Sign
	}
	ordered := make([]*acc, 0, len(sums))
	for _, a := range sums {
		if a.count != 0 {
			ordered = append(ordered, a)
		}
	}
	// Stable order by first appearance.
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].order < ordered[j-1].order; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	out := &Signed{Schema: s.Schema, Rows: make([]SignedRow, 0, len(ordered))}
	for _, a := range ordered {
		sign := +1
		n := a.count
		if n < 0 {
			sign = -1
			n = -n
		}
		for k := 0; k < n; k++ {
			out.Rows = append(out.Rows, SignedRow{
				TID:    relation.HashTID(a.values),
				Values: a.values,
				Sign:   sign,
			})
		}
	}
	return out
}

// ToDelta converts a signed delta back to the old/new/ts differential
// layout, pairing a -1 and a +1 row with the same tid into a modification.
// All rows receive timestamp ts.
func (s *Signed) ToDelta(ts vclock.Timestamp) *Delta {
	type pair struct {
		old, now []relation.Value
	}
	pairs := make(map[relation.TID]*pair, len(s.Rows))
	order := make([]relation.TID, 0, len(s.Rows))
	for _, r := range s.Rows {
		p, ok := pairs[r.TID]
		if !ok {
			p = &pair{}
			pairs[r.TID] = p
			order = append(order, r.TID)
		}
		if r.Sign < 0 {
			p.old = r.Values
		} else {
			p.now = r.Values
		}
	}
	out := New(s.Schema)
	for _, tid := range order {
		p := pairs[tid]
		if p.old == nil && p.now == nil {
			continue
		}
		if p.old != nil && p.now != nil && valuesEqual(p.old, p.now) {
			continue
		}
		out.rows = append(out.rows, Row{TID: tid, Old: p.old, New: p.now, TS: ts})
	}
	return out
}

// ToDeltaNetted is ToDelta specialized to signed deltas already in
// netted form — each tid appears exactly once, as an adjacent run of at
// most one -1 row followed by at most one +1 row (the shape the
// engine's netting emits). The pairing is then a single forward pass
// with no per-tid index, so the conversion allocates only the output
// rows. Callers holding arbitrary signed deltas must use ToDelta.
func (s *Signed) ToDeltaNetted(ts vclock.Timestamp) *Delta {
	out := New(s.Schema)
	if len(s.Rows) == 0 {
		return out
	}
	out.rows = make([]Row, 0, len(s.Rows))
	for i := 0; i < len(s.Rows); i++ {
		r := s.Rows[i]
		if r.Sign < 0 && i+1 < len(s.Rows) && s.Rows[i+1].Sign > 0 && s.Rows[i+1].TID == r.TID {
			now := s.Rows[i+1].Values
			if !valuesEqual(r.Values, now) {
				out.rows = append(out.rows, Row{TID: r.TID, Old: r.Values, New: now, TS: ts})
			}
			i++
			continue
		}
		if r.Sign < 0 {
			out.rows = append(out.rows, Row{TID: r.TID, Old: r.Values, TS: ts})
		} else {
			out.rows = append(out.rows, Row{TID: r.TID, New: r.Values, TS: ts})
		}
	}
	return out
}

// InsertedRelation materializes the +1 rows as a relation.
func (s *Signed) InsertedRelation() *relation.Relation {
	out := relation.New(s.Schema)
	for _, r := range s.Rows {
		if r.Sign > 0 {
			_ = out.Upsert(relation.Tuple{TID: r.TID, Values: r.Values})
		}
	}
	return out
}

// DeletedRelation materializes the -1 rows as a relation.
func (s *Signed) DeletedRelation() *relation.Relation {
	out := relation.New(s.Schema)
	for _, r := range s.Rows {
		if r.Sign < 0 {
			_ = out.Upsert(relation.Tuple{TID: r.TID, Values: r.Values})
		}
	}
	return out
}

// ApplySigned applies a signed delta to a materialized result relation:
// -1 rows remove the tid, +1 rows insert/replace it. Used to maintain the
// cached complete result of a CQ (Section 4.3, "complete set of the
// result").
func ApplySigned(rel *relation.Relation, s *Signed) {
	for _, r := range s.Rows {
		if r.Sign < 0 {
			if rel.Has(r.TID) {
				_ = rel.Delete(r.TID)
			}
		}
	}
	for _, r := range s.Rows {
		if r.Sign > 0 {
			_ = rel.Upsert(relation.Tuple{TID: r.TID, Values: r.Values})
		}
	}
}
