package cq

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

// Multi-tenant template sharing.
//
// A million users registering `price > X` for a million different X is
// one query template, not a million queries. When Config.ShareTemplates
// is on, registration extracts the constant-stripped template
// (algebra.ExtractTemplate) and attaches the CQ to a templateGroup: one
// dra.Prepared (with its operand index cache) evaluates the TEMPLATE
// delta once per refresh round, and a parameter-dispatch index routes
// each delta row to the members whose constants select it — O(log n +
// matches) per row, not O(members). Everything member-visible stays
// per-member: trigger accounting, Seq, journal write-ahead ordering,
// quarantine breakers and subscriber delivery all run exactly as in the
// unshared path, so a member's transcript is indistinguishable from the
// one it would have produced with a private plan.
//
// Lock order: Manager.mu → instance.mu → templateGroup.mu. The group
// lock is a leaf — nothing acquires a manager or instance lock while
// holding it — which is what lets a member's refresh (holding its own
// instance lock) step the group while Drop of a DIFFERENT member
// (holding the manager lock plus that member's instance lock) waits its
// turn on the same group without deadlock.

// templateGroup is one shared template: the prepared stripped plan, the
// shared previous result, the subscriber table, and the dispatch index.
type templateGroup struct {
	fp  uint64
	tpl *algebra.Template
	// tables is the operand routing set of the prepared template plan.
	tables []string

	// active counts non-terminated, non-dropped members. Atomic so the
	// push router's gate can read it under the store's commit hook
	// without touching mu (mu is held across plan evaluation).
	active atomic.Int64

	mu       sync.Mutex
	prepared *dra.Prepared
	prev     *relation.Relation // template result at lastExec
	lastExec vclock.Timestamp
	members  map[string]*tmplMember
	index    *paramIndex
}

// tmplMember is one subscriber of a template.
type tmplMember struct {
	inst   *instance
	params []relation.Value
	// pending buffers the member's share of each group step since its
	// own last refresh, tagged with the step timestamp so a refresh at
	// execTS folds exactly the steps it covers.
	pending []tmplBatch
	// removed marks a member dropped/terminated; dispatch skips it
	// until the index compacts it away. Guarded by group.mu.
	removed bool
}

type tmplBatch struct {
	ts   vclock.Timestamp
	rows []delta.SignedRow
}

// joinTemplateLocked attaches a CQ to its template group, creating the
// group on first use. Caller holds m.mu; the instance is not yet
// registered (Register) or just rebuilt (Resume), so its fields are
// still private to the caller.
//
// For a fresh registration (resume false) the group is stepped to the
// current timestamp and the member's initial result — σ_params of the
// shared template result — is returned, with inst.lastExec pinned to
// the group's; the member then consumes the template stream forever.
// For a durable resume (resume true) the member keeps its recovered
// result and lastExec and is flagged pendingSync: its first refresh is
// one private full-plan differential catch-up, after which pending
// template batches at or before the catch-up point are discarded and
// the member joins the stream.
func (m *Manager) joinTemplateLocked(inst *instance, resume bool) (*relation.Relation, bool, error) {
	if !m.cfg.UseDRA || !m.cfg.ShareTemplates || inst.maint != nil {
		return nil, false, nil
	}
	tpl, params, ok := algebra.ExtractTemplate(inst.plan)
	if !ok {
		return nil, false, nil
	}
	g := m.templates[tpl.Fingerprint]
	if g == nil {
		prep, err := m.prepare(fmt.Sprintf("template %016x", tpl.Fingerprint), tpl.Plan, m.cfg.Strategy)
		if err != nil {
			// The template plan cannot be prepared (e.g. propagate-only
			// shape): fall back to an unshared registration.
			m.logf("cq %q: template not preparable (%v); registering unshared", inst.def.Name, err)
			return nil, false, nil
		}
		prev, err := dra.InitialResult(tpl.Plan, m.store.Live())
		if err != nil {
			prep.Close()
			return nil, false, err
		}
		g = &templateGroup{
			fp:       tpl.Fingerprint,
			tpl:      tpl,
			tables:   prep.Tables(),
			prepared: prep,
			prev:     prev,
			lastExec: m.store.Now(),
			members:  make(map[string]*tmplMember),
			index:    newParamIndex(tpl.Slots),
		}
		m.templates[g.fp] = g
		m.routeTemplateLocked(g)
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	var initial *relation.Relation
	if resume {
		inst.pendingSync = true
	} else {
		// Bring the group to the registration point so the member's
		// initial result is exact at the timestamp it starts streaming
		// from. Counter snapshot before the timestamp, as in Poll.
		versions := m.store.ChangeCounts()
		now := m.store.Now()
		if err := m.stepGroupLocked(g, now, m.store.NewWindowCache(), versions); err != nil {
			return nil, false, fmt.Errorf("cq %q: template catch-up: %w", inst.def.Name, err)
		}
		initial = relation.New(g.prev.Schema())
		for _, tu := range g.prev.Tuples() {
			if g.tpl.MatchRow(params, tu.Values) {
				_ = initial.Insert(tu)
			}
		}
		inst.lastExec = g.lastExec
		inst.lastObs = g.lastExec
	}
	mem := &tmplMember{inst: inst, params: params}
	g.members[inst.def.Name] = mem
	g.index.add(mem)
	g.active.Add(1)
	inst.group = g
	inst.groupParams = params
	if mm := m.met; mm != nil {
		mm.sharedRegs.Inc()
		mm.templates.Set(int64(len(m.templates)))
		mm.templateMembers.Add(1)
	}
	return initial, true, nil
}

// leaveTemplateLocked detaches an instance from its group (Drop, or a
// registration whose journal write failed), reaping the group when its
// last member leaves. Caller holds m.mu.
func (m *Manager) leaveTemplateLocked(inst *instance) {
	g := inst.group
	if g == nil {
		return
	}
	g.mu.Lock()
	if mem := g.members[inst.def.Name]; mem != nil && mem.inst == inst {
		delete(g.members, inst.def.Name)
		mem.removed = true
		mem.pending = nil
		g.index.remove(mem)
		g.active.Add(-1)
		if mm := m.met; mm != nil {
			mm.templateMembers.Add(-1)
		}
	}
	empty := len(g.members) == 0
	g.mu.Unlock()
	inst.group = nil
	if empty {
		m.reapGroupLocked(g)
	}
}

// reapGroupLocked retires an empty group: the prepared plan (and its
// operand cache) closes and the push route retires. Caller holds m.mu;
// no member can be mid-refresh (refreshing members are still in
// g.members) and no new member can join (joins hold m.mu).
func (m *Manager) reapGroupLocked(g *templateGroup) {
	if m.templates[g.fp] != g {
		return
	}
	delete(m.templates, g.fp)
	g.mu.Lock()
	g.prepared.Close()
	g.mu.Unlock()
	if m.router != nil {
		m.router.Unregister(tmplRouteName(g.fp))
	}
	if mm := m.met; mm != nil {
		mm.templates.Set(int64(len(m.templates)))
	}
}

// reapTemplatesLocked sweeps groups whose members have all terminated.
// (Drop reaps eagerly; termination by StopAfterN only flags the member
// under the group lock, so the sweep finishes the job.) Caller holds
// m.mu.
func (m *Manager) reapTemplatesLocked() {
	if len(m.templates) == 0 {
		return
	}
	var dead []*templateGroup
	for _, g := range m.templates {
		if g.active.Load() == 0 {
			dead = append(dead, g)
		}
	}
	for _, g := range dead {
		m.reapGroupLocked(g)
	}
}

// stepGroupLocked advances the shared template evaluation to execTS:
// one prepared differential Step over the template plan, then the
// parameter-dispatch stage fans the template delta out to member
// pending buffers. Caller holds g.mu. Monotonic: a round whose
// timestamp the group has already covered is a no-op (the fired members
// just drain their buffers), which is what makes one Step per template
// per round out of N concurrent member refreshes.
func (m *Manager) stepGroupLocked(g *templateGroup, execTS vclock.Timestamp, cache *storage.WindowCache, versions map[string]uint64) error {
	if execTS <= g.lastExec {
		return nil
	}
	var start time.Time
	if m.met != nil {
		start = time.Now()
	}
	compact := m.cfg.Engine.CompactDeltas
	ctx := &dra.Context{
		Pre:       m.store.At(g.lastExec),
		Post:      m.store.Live(),
		Deltas:    make(map[string]*delta.Delta, len(g.tables)),
		LastTS:    g.lastExec,
		Prev:      g.prev,
		Compacted: compact,
		Versions:  versions,
	}
	for _, table := range g.tables {
		w, err := cache.Window(table, g.lastExec, execTS, compact)
		if err != nil {
			return err
		}
		ctx.Deltas[table] = w
	}
	if m.cfg.Engine.Vectorized {
		m.fillBatches(ctx, g.tables, g.lastExec, execTS, cache, compact, nil)
	}
	res, err := g.prepared.Step(ctx, execTS)
	if err != nil {
		return err
	}
	if res.Signed != nil && len(res.Signed.Rows) > 0 {
		m.dispatchLocked(g, res.Signed.Rows, execTS)
	}
	g.prev = res.ApplyTo(g.prev)
	g.lastExec = execTS
	if mm := m.met; mm != nil {
		mm.templateSteps.Inc()
		mm.templateStepNS.Observe(time.Since(start))
	}
	return nil
}

// dispatchLocked routes each template delta row to the members whose
// parameters select it. The index narrows each row to its candidate
// set (hash lookup on an equality slot, binary search on a range slot);
// candidates are then verified against every slot, so the work per row
// is O(lookup + matches), independent of the member count. Caller holds
// g.mu.
func (m *Manager) dispatchLocked(g *templateGroup, rows []delta.SignedRow, ts vclock.Timestamp) {
	matched := make(map[*tmplMember][]delta.SignedRow)
	candidates, matches := 0, 0
	for _, row := range rows {
		cands := g.index.candidates(row.Values)
		candidates += len(cands)
		for _, mem := range cands {
			if mem.removed || !g.tpl.MatchRow(mem.params, row.Values) {
				continue
			}
			matches++
			matched[mem] = append(matched[mem], row)
		}
	}
	for mem, rs := range matched {
		mem.pending = append(mem.pending, tmplBatch{ts: ts, rows: rs})
	}
	if mm := m.met; mm != nil {
		mm.templateDispatchRows.Add(int64(len(rows)))
		mm.templateCandidates.Add(int64(candidates))
		mm.templateMatches.Add(int64(matches))
	}
}

// refreshShared is the grouped member's replacement for a private plan
// evaluation: step the group to execTS (first fired member of the round
// pays; the rest find lastExec already there), then fold the member's
// pending batches into one net signed delta against its previous
// result. Caller holds inst.mu. The fold is pure — batches are only
// discarded by afterRefreshLocked once the refresh has journaled and
// committed, so a journal failure retries against intact buffers.
func (m *Manager) refreshShared(inst *instance, execTS vclock.Timestamp, cache *storage.WindowCache, versions map[string]uint64) (*dra.Result, error) {
	g := inst.group
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := m.stepGroupLocked(g, execTS, cache, versions); err != nil {
		return nil, err
	}
	mem := g.members[inst.def.Name]
	if mem == nil || mem.inst != inst {
		return nil, errors.New("cq: instance detached from its template group")
	}
	net := foldBatches(inst.prev, mem.pending, execTS, g.prev.Schema())
	return &dra.Result{
		Signed: net,
		Delta:  net.ToDelta(execTS),
		ExecTS: execTS,
	}, nil
}

// afterRefreshLocked commits a grouped member's refresh at execTS:
// covered pending batches are discarded, and a member that just
// terminated (StopAfterN) leaves the dispatch index. Caller holds
// inst.mu; the refresh has already journaled and applied.
func (m *Manager) afterRefreshLocked(inst *instance, execTS vclock.Timestamp, terminated bool) {
	g := inst.group
	g.mu.Lock()
	defer g.mu.Unlock()
	inst.pendingSync = false
	mem := g.members[inst.def.Name]
	if mem == nil || mem.inst != inst {
		return
	}
	keep := mem.pending[:0]
	for _, b := range mem.pending {
		if b.ts > execTS {
			keep = append(keep, b)
		}
	}
	mem.pending = keep
	if terminated {
		delete(g.members, inst.def.Name)
		mem.removed = true
		mem.pending = nil
		g.index.remove(mem)
		g.active.Add(-1)
		if mm := m.met; mm != nil {
			mm.templateMembers.Add(-1)
		}
	}
}

// foldBatches collapses a member's pending batches (those covered by
// execTS) into one net signed delta relative to prev. Batches cannot
// simply be concatenated: ApplySigned applies all deletions before all
// insertions, so insert@T1 followed by delete@T2 of the same tid would
// resurrect the row. Instead each tid runs a tiny presence state
// machine seeded from prev, and the net emits at most one -1 (the
// original value) and one +1 (the final value) per tid — exactly what a
// private differential evaluation over the whole window would net to.
func foldBatches(prev *relation.Relation, batches []tmplBatch, execTS vclock.Timestamp, schema relation.Schema) *delta.Signed {
	type presence struct {
		orig        []relation.Value
		cur         []relation.Value
		origPresent bool
		curPresent  bool
	}
	states := make(map[relation.TID]*presence)
	var order []relation.TID
	for _, b := range batches {
		if b.ts > execTS {
			continue
		}
		for _, r := range b.rows {
			st := states[r.TID]
			if st == nil {
				st = &presence{}
				if tu, ok := prev.Lookup(r.TID); ok {
					st.orig, st.origPresent = tu.Values, true
					st.cur, st.curPresent = tu.Values, true
				}
				states[r.TID] = st
				order = append(order, r.TID)
			}
			if r.Sign < 0 {
				st.curPresent = false
			} else {
				st.cur, st.curPresent = r.Values, true
			}
		}
	}
	out := &delta.Signed{Schema: schema}
	for _, tid := range order {
		st := states[tid]
		switch {
		case st.origPresent && st.curPresent:
			if !valuesEq(st.orig, st.cur) {
				out.Rows = append(out.Rows,
					delta.SignedRow{TID: tid, Values: st.orig, Sign: -1},
					delta.SignedRow{TID: tid, Values: st.cur, Sign: +1})
			}
		case st.origPresent:
			out.Rows = append(out.Rows, delta.SignedRow{TID: tid, Values: st.orig, Sign: -1})
		case st.curPresent:
			out.Rows = append(out.Rows, delta.SignedRow{TID: tid, Values: st.cur, Sign: +1})
		}
	}
	return out
}

func valuesEq(a, b []relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// --- push routing ------------------------------------------------------

// tmplRoutePrefix namespaces template routes in the push router. The
// NUL byte cannot appear in a registered CQ name that came through SQL,
// so template routes never collide with per-CQ routes.
const tmplRoutePrefix = "\x00tmpl:"

func tmplRouteName(fp uint64) string {
	return tmplRoutePrefix + strconv.FormatUint(fp, 16)
}

func parseTmplRoute(name string) (uint64, bool) {
	if !strings.HasPrefix(name, tmplRoutePrefix) {
		return 0, false
	}
	fp, err := strconv.ParseUint(name[len(tmplRoutePrefix):], 16, 64)
	if err != nil {
		return 0, false
	}
	return fp, true
}

// routeTemplateLocked registers ONE push route per template group, so
// the router's ready queue is O(touched templates) per commit instead
// of O(touched CQs). Caller holds m.mu.
func (m *Manager) routeTemplateLocked(g *templateGroup) {
	if m.router == nil {
		return
	}
	m.router.Register(tmplRouteName(g.fp), g.tables, func() bool {
		return g.active.Load() > 0
	})
}

// pushDispatchTemplate is one template's share of a push round: the
// commit-driven analogue of Poll restricted to the group's members.
// Trigger evaluation, quarantine gating, Seq/journal ordering and the
// roundTS monotonicity guard are exactly the per-CQ push path's; the
// template is stepped once by the first fired member's refresh.
func (m *Manager) pushDispatchTemplate(fp uint64) (refreshed, retire bool, err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false, true, nil
	}
	g := m.templates[fp]
	if g == nil {
		m.mu.Unlock()
		return false, true, nil
	}
	var versions map[string]uint64
	if m.cfg.UseDRA {
		versions = m.store.ChangeCounts()
	}
	roundTS := m.store.Now()
	cache := m.store.NewWindowCache()
	g.mu.Lock()
	insts := make([]*instance, 0, len(g.members))
	for _, mem := range g.members {
		insts = append(insts, mem.inst)
	}
	g.mu.Unlock()
	var fired []*instance
	var errs []error
	for _, inst := range insts {
		// Time-based triggers stay on the poll loop, exactly as in
		// routePushLocked: a commit says nothing about the clock.
		if inst.terminated.Load() || inst.dropped.Load() || inst.trigger.Kind == sql.TriggerEvery {
			continue
		}
		if !inst.breaker.Allow() {
			if mm := m.met; mm != nil {
				mm.quarantineSkips.Inc()
			}
			continue
		}
		should, terr := m.observeAndTestLocked(inst, roundTS, cache)
		if terr != nil {
			m.noteFailure(inst)
			errs = append(errs, fmt.Errorf("cq %q: %w", inst.def.Name, terr))
			continue
		}
		if mm := m.met; mm != nil {
			mm.triggerEvals.Inc()
			if should {
				mm.fireCounter(inst.trigger.Kind).Inc()
			}
		}
		if should {
			fired = append(fired, inst)
		} else {
			inst.breaker.Release()
		}
	}
	m.mu.Unlock()

	n, refErrs := m.refreshGroup(fired, roundTS, cache, versions)
	errs = append(errs, refErrs...)
	refreshed = n > 0
	if refreshed && m.cfg.AutoGC && m.pushGCTicks.Add(1)%pushGCEvery == 0 {
		m.mu.Lock()
		if !m.closed {
			m.gcLocked()
		}
		m.mu.Unlock()
	}
	return refreshed, g.active.Load() == 0, errors.Join(errs...)
}

// --- parameter dispatch index ------------------------------------------

// paramIndex narrows a template delta row to the members that might
// match it. One slot is elected primary: an equality slot backs a hash
// index over member constants (O(1) to the candidate bucket); otherwise
// a range slot backs a constant-sorted array searched binarily — for
// `col > c`, the members whose c lies below the row's value form a
// prefix of the array (dually a suffix for `<`). Remaining slots are
// verified per candidate, so lookups cost O(1 + matches) or O(log n +
// matches). Insertions append (amortized O(1)); the range array re-sorts
// lazily on the next lookup, so registering a million members is not
// O(n²).
type paramIndex struct {
	slots []algebra.ParamSlot
	// primary is the elected slot index; eq says which flavor.
	primary int
	eq      bool

	buckets map[uint64][]*tmplMember // eq: coerced-constant hash → members
	rng     []rngEnt                 // range: sorted by constant
	dirty   bool                     // rng has unsorted appends
	removed int                      // tombstoned entries in rng
}

type rngEnt struct {
	c relation.Value
	m *tmplMember
}

func newParamIndex(slots []algebra.ParamSlot) *paramIndex {
	idx := &paramIndex{slots: slots, primary: 0}
	for i, s := range slots {
		if s.Op == "=" {
			idx.primary, idx.eq = i, true
			break
		}
	}
	if idx.eq {
		idx.buckets = make(map[uint64][]*tmplMember)
	}
	return idx
}

// keyFor hashes a value in the primary slot's column type, so an Int
// parameter over a Float column lands in the same bucket as the Float
// row values it must match. ok is false when the value cannot take the
// column's type (e.g. 2.5 against an INT column) — such a parameter
// matches nothing and such a row matches no parameter.
func (idx *paramIndex) keyFor(v relation.Value) (uint64, bool) {
	kind := idx.slots[idx.primary].Kind
	if v.IsNull() {
		return 0, false
	}
	if v.Kind != kind {
		switch {
		case kind == relation.TFloat && v.Kind == relation.TInt:
			v = relation.Float(v.AsFloat())
		case kind == relation.TInt && v.Kind == relation.TFloat:
			f := v.AsFloat()
			i := int64(f)
			if float64(i) != f {
				return 0, false
			}
			v = relation.Int(i)
		default:
			return 0, false
		}
	}
	return relation.HashValues([]relation.Value{v}), true
}

func (idx *paramIndex) add(mem *tmplMember) {
	c := mem.params[idx.primary]
	if idx.eq {
		if key, ok := idx.keyFor(c); ok {
			idx.buckets[key] = append(idx.buckets[key], mem)
		}
		// A parameter that cannot equal any value of the column's type
		// is indexed nowhere: its member legitimately never matches.
		return
	}
	idx.rng = append(idx.rng, rngEnt{c: c, m: mem})
	idx.dirty = true
}

func (idx *paramIndex) remove(mem *tmplMember) {
	c := mem.params[idx.primary]
	if idx.eq {
		key, ok := idx.keyFor(c)
		if !ok {
			return
		}
		b := idx.buckets[key]
		for i, m2 := range b {
			if m2 == mem {
				b[i] = b[len(b)-1]
				b = b[:len(b)-1]
				break
			}
		}
		if len(b) == 0 {
			delete(idx.buckets, key)
		} else {
			idx.buckets[key] = b
		}
		return
	}
	// Range entries tombstone (mem.removed is already set) and compact
	// once they dominate, keeping removal O(1) amortized.
	idx.removed++
	if idx.removed*2 > len(idx.rng) {
		keep := idx.rng[:0]
		for _, e := range idx.rng {
			if !e.m.removed {
				keep = append(keep, e)
			}
		}
		idx.rng = keep
		idx.removed = 0
	}
}

// candidates returns the members whose primary-slot constant can match
// the row. Callers must still verify every slot (MatchRow): candidates
// over-approximates on the non-primary slots only.
func (idx *paramIndex) candidates(row []relation.Value) []*tmplMember {
	v := row[idx.slots[idx.primary].Idx]
	if v.IsNull() {
		return nil // NULL satisfies no comparison
	}
	if idx.eq {
		key, ok := idx.keyFor(v)
		if !ok {
			return nil
		}
		return idx.buckets[key]
	}
	if idx.dirty {
		sort.SliceStable(idx.rng, func(i, j int) bool {
			return idx.rng[i].c.Compare(idx.rng[j].c) < 0
		})
		idx.dirty = false
	}
	n := len(idx.rng)
	var lo, hi int
	switch idx.slots[idx.primary].Op {
	case ">": // member matches iff rowVal > c ⇔ c < rowVal
		lo, hi = 0, sort.Search(n, func(i int) bool { return idx.rng[i].c.Compare(v) >= 0 })
	case ">=": // c <= rowVal
		lo, hi = 0, sort.Search(n, func(i int) bool { return idx.rng[i].c.Compare(v) > 0 })
	case "<": // rowVal < c ⇔ c > rowVal
		lo, hi = sort.Search(n, func(i int) bool { return idx.rng[i].c.Compare(v) > 0 }), n
	case "<=": // c >= rowVal
		lo, hi = sort.Search(n, func(i int) bool { return idx.rng[i].c.Compare(v) >= 0 }), n
	default:
		lo, hi = 0, n
	}
	if lo >= hi {
		return nil
	}
	out := make([]*tmplMember, 0, hi-lo)
	for _, e := range idx.rng[lo:hi] {
		if !e.m.removed {
			out = append(out, e.m)
		}
	}
	return out
}
