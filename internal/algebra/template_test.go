package algebra

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/diorama/continual/internal/relation"
)

func extract(t *testing.T, src catSource, query string) (*Template, []relation.Value) {
	t.Helper()
	tpl, params, ok := ExtractTemplate(planFor(t, src, query))
	if !ok {
		t.Fatalf("ExtractTemplate(%q): not templatable", query)
	}
	return tpl, params
}

func TestTemplateSharesAcrossConstants(t *testing.T) {
	src := stocksSource(t)
	t1, p1 := extract(t, src, "SELECT * FROM stocks WHERE price > 100")
	t2, p2 := extract(t, src, "SELECT * FROM stocks WHERE price > 17")
	if t1.Fingerprint != t2.Fingerprint {
		t.Fatalf("same template expected: %#x vs %#x", t1.Fingerprint, t2.Fingerprint)
	}
	if len(t1.Slots) != 1 || t1.Slots[0].Op != ">" || !strings.HasSuffix(t1.Slots[0].Col, "price") {
		t.Fatalf("unexpected slots: %+v", t1.Slots)
	}
	if !p1[0].Equal(relation.Int(100)) || !p2[0].Equal(relation.Int(17)) {
		t.Fatalf("params: %v / %v", p1, p2)
	}
	// A different operator is a different template.
	t3, _ := extract(t, src, "SELECT * FROM stocks WHERE price < 100")
	if t3.Fingerprint == t1.Fingerprint {
		t.Fatal("price<X must not share a template with price>X")
	}
	// So is a different query shape (projection must keep the filter
	// column, or extraction refuses — see TestTemplateRefusesRenamedColumn).
	t4, _ := extract(t, src, "SELECT price, name FROM stocks WHERE price > 100")
	if t4.Fingerprint == t1.Fingerprint {
		t.Fatal("projection must change the template")
	}
}

func TestTemplateConjunctOrderCanonical(t *testing.T) {
	src := stocksSource(t)
	t1, p1 := extract(t, src, "SELECT * FROM stocks WHERE price > 5 AND name = 'IBM'")
	t2, p2 := extract(t, src, "SELECT * FROM stocks WHERE name = 'QLI' AND price > 9")
	if t1.Fingerprint != t2.Fingerprint {
		t.Fatalf("conjunct order changed the template: %#x vs %#x", t1.Fingerprint, t2.Fingerprint)
	}
	// Parameter vectors are slot-aligned regardless of source order.
	for i, s := range t1.Slots {
		if strings.HasSuffix(s.Col, "name") {
			if p1[i].AsString() != "IBM" || p2[i].AsString() != "QLI" {
				t.Fatalf("slot %d (%s): params misaligned: %v / %v", i, s.Col, p1, p2)
			}
		}
	}
}

func TestTemplateFlippedLiteral(t *testing.T) {
	src := stocksSource(t)
	t1, p1 := extract(t, src, "SELECT * FROM stocks WHERE 100 < price")
	t2, p2 := extract(t, src, "SELECT * FROM stocks WHERE price > 100")
	if t1.Fingerprint != t2.Fingerprint {
		t.Fatal("100 < price must normalize to price > 100")
	}
	if !p1[0].Equal(p2[0]) {
		t.Fatalf("params differ: %v vs %v", p1, p2)
	}
}

// A projection that renames another column onto the filter column's
// name must not be stripped: the output "price" is not the compared
// value.
func TestTemplateRefusesRenamedColumn(t *testing.T) {
	src := stocksSource(t)
	p := planFor(t, src, "SELECT name AS price FROM stocks WHERE price > 100")
	if _, _, ok := ExtractTemplate(p); ok {
		t.Fatal("stripped a comparison on a column shadowed by a rename")
	}
}

func TestTemplateRefusesUnsupportedShapes(t *testing.T) {
	src := stocksSource(t)
	for _, q := range []string{
		"SELECT name, COUNT(*) AS n FROM stocks WHERE price > 5 GROUP BY name",
		"SELECT DISTINCT name FROM stocks WHERE price > 5",
		"SELECT * FROM stocks WHERE price > 5 ORDER BY price",
		"SELECT * FROM stocks WHERE price > 5 LIMIT 3",
		"SELECT * FROM stocks",               // nothing to strip
		"SELECT * FROM stocks WHERE price != 100", // != is not indexable
	} {
		if _, _, ok := ExtractTemplate(planFor(t, src, q)); ok {
			t.Errorf("ExtractTemplate(%q): expected refusal", q)
		}
	}
}

// The core soundness property: executing the original plan equals
// executing the stripped template plan and filtering rows through
// MatchRow with the extracted parameters.
func TestTemplateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		src := randSource(rng)
		query := randTemplatableQuery(rng)
		orig := planFor(t, src, query)
		tpl, params, ok := ExtractTemplate(orig)
		if !ok {
			continue
		}
		want, err := NewExecutor(src.MapSource).Execute(orig)
		if err != nil {
			t.Fatalf("exec %q: %v", query, err)
		}
		full, err := NewExecutor(src.MapSource).Execute(tpl.Plan)
		if err != nil {
			t.Fatalf("exec template of %q: %v", query, err)
		}
		got := relation.New(full.Schema())
		for _, tu := range full.Tuples() {
			if tpl.MatchRow(params, tu.Values) {
				_ = got.Insert(tu)
			}
		}
		if !want.EqualContents(got) {
			t.Fatalf("query %q: original and template+dispatch disagree\nwant %v\ngot  %v",
				query, want, got)
		}
	}
}

// randTemplatableQuery builds SPJ queries over the randSource tables
// with strippable conjuncts (and some residual ones).
func randTemplatableQuery(rng *rand.Rand) string {
	nTables := 1 + rng.Intn(3)
	from := "r"
	if nTables >= 2 {
		from += " JOIN u ON r.s1 = u.s2"
	}
	if nTables >= 3 {
		from += " JOIN w ON u.x = w.x"
	}
	pool := []string{
		fmt.Sprintf("r.a > %d", rng.Intn(200)),
		fmt.Sprintf("r.a <= %d", rng.Intn(200)),
		fmt.Sprintf("r.s1 = 'k%d'", rng.Intn(6)),
		fmt.Sprintf("%d < r.a", rng.Intn(200)),
	}
	if nTables >= 2 {
		pool = append(pool,
			fmt.Sprintf("u.b < %d", rng.Intn(200)),
			fmt.Sprintf("u.x >= %d", rng.Intn(8)),
			fmt.Sprintf("u.b != %d", rng.Intn(200)), // residual
		)
	}
	var conjs []string
	for _, c := range pool {
		if rng.Intn(2) == 0 {
			conjs = append(conjs, c)
		}
	}
	if len(conjs) == 0 {
		conjs = append(conjs, pool[0])
	}
	q := "SELECT * FROM " + from + " WHERE " + conjs[0]
	for _, c := range conjs[1:] {
		q += " AND " + c
	}
	return q
}
