// Package algebra implements the relational algebra layer: expression
// compilation and evaluation, logical query plans for SPJ expressions
// (plus aggregation), a planner that lowers parsed SQL to plans, a
// heuristic optimizer (Section 5.2 of the paper names "select before
// join" and pushing cheap predicates first as the intended strategy), and
// a materializing executor.
package algebra

import (
	"errors"
	"fmt"
	"math"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// Errors returned by expression compilation and evaluation.
var (
	ErrUnknownColumn = errors.New("algebra: unknown column")
	ErrTypeMismatch  = errors.New("algebra: type mismatch")
	ErrNotBoolean    = errors.New("algebra: predicate is not boolean")
	ErrDivideByZero  = errors.New("algebra: division by zero")
	ErrAggregate     = errors.New("algebra: aggregate in row-level expression")
)

// CompiledExpr is an expression bound to a schema, ready to evaluate
// against tuples of that schema.
type CompiledExpr interface {
	Eval(t relation.Tuple) (relation.Value, error)
	// Type is the static result type (best effort; TFloat for mixed math).
	Type() relation.Type
	String() string
}

// Compile binds a parsed expression to a schema, resolving column
// references to positions. Aggregate calls are rejected (they are handled
// by the Aggregate plan node, not row-level evaluation).
func Compile(e sql.Expr, schema relation.Schema) (CompiledExpr, error) {
	switch ex := e.(type) {
	case *sql.Literal:
		return litExpr{v: ex.Value}, nil
	case *sql.ColumnRef:
		idx, ok := schema.ColIndex(ex.Name)
		if !ok {
			return nil, fmt.Errorf("%w: %q in %s", ErrUnknownColumn, ex.Name, schema)
		}
		return colExpr{name: ex.Name, idx: idx, typ: schema.Col(idx).Type}, nil
	case *sql.UnaryExpr:
		inner, err := Compile(ex.E, schema)
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: ex.Op, e: inner}, nil
	case *sql.BinaryExpr:
		l, err := Compile(ex.L, schema)
		if err != nil {
			return nil, err
		}
		r, err := Compile(ex.R, schema)
		if err != nil {
			return nil, err
		}
		return binExpr{op: ex.Op, l: l, r: r}, nil
	case *sql.FuncCall:
		if sql.AggregateFuncs[ex.Name] {
			return nil, fmt.Errorf("%w: %s", ErrAggregate, ex.Name)
		}
		if ex.Name == "ABS" {
			inner, err := Compile(ex.Arg, schema)
			if err != nil {
				return nil, err
			}
			return absExpr{e: inner}, nil
		}
		return nil, fmt.Errorf("algebra: unknown function %s", ex.Name)
	default:
		return nil, fmt.Errorf("algebra: cannot compile %T", e)
	}
}

// EvalPredicate evaluates a compiled expression as a predicate: NULL and
// non-boolean results are rejected, except NULL which is treated as false
// (SQL's unknown collapses to "do not select").
func EvalPredicate(e CompiledExpr, t relation.Tuple) (bool, error) {
	v, err := e.Eval(t)
	if err != nil {
		return false, err
	}
	if v.IsNull() {
		return false, nil
	}
	if v.Kind != relation.TBool {
		return false, fmt.Errorf("%w: got %s", ErrNotBoolean, v.Kind)
	}
	return v.AsBool(), nil
}

type litExpr struct{ v relation.Value }

func (l litExpr) Eval(relation.Tuple) (relation.Value, error) { return l.v, nil }
func (l litExpr) Type() relation.Type                         { return l.v.Kind }
func (l litExpr) String() string                              { return l.v.String() }

type colExpr struct {
	name string
	idx  int
	typ  relation.Type
}

func (c colExpr) Eval(t relation.Tuple) (relation.Value, error) {
	if c.idx >= len(t.Values) {
		return relation.Value{}, fmt.Errorf("%w: %q out of range", ErrUnknownColumn, c.name)
	}
	return t.Values[c.idx], nil
}
func (c colExpr) Type() relation.Type { return c.typ }
func (c colExpr) String() string      { return c.name }

type unaryExpr struct {
	op string
	e  CompiledExpr
}

func (u unaryExpr) Eval(t relation.Tuple) (relation.Value, error) {
	v, err := u.e.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	if v.IsNull() {
		return relation.NullValue(), nil
	}
	switch u.op {
	case "NOT":
		if v.Kind != relation.TBool {
			return relation.Value{}, fmt.Errorf("%w: NOT applied to %s", ErrTypeMismatch, v.Kind)
		}
		return relation.Bool(!v.AsBool()), nil
	case "-":
		switch v.Kind {
		case relation.TInt:
			return relation.Int(-v.AsInt()), nil
		case relation.TFloat:
			return relation.Float(-v.AsFloat()), nil
		}
		return relation.Value{}, fmt.Errorf("%w: unary minus on %s", ErrTypeMismatch, v.Kind)
	}
	return relation.Value{}, fmt.Errorf("algebra: unknown unary op %q", u.op)
}

func (u unaryExpr) Type() relation.Type {
	if u.op == "NOT" {
		return relation.TBool
	}
	return u.e.Type()
}

func (u unaryExpr) String() string { return fmt.Sprintf("(%s %s)", u.op, u.e) }

type absExpr struct{ e CompiledExpr }

func (a absExpr) Eval(t relation.Tuple) (relation.Value, error) {
	v, err := a.e.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	if v.IsNull() {
		return relation.NullValue(), nil
	}
	switch v.Kind {
	case relation.TInt:
		n := v.AsInt()
		if n < 0 {
			n = -n
		}
		return relation.Int(n), nil
	case relation.TFloat:
		return relation.Float(math.Abs(v.AsFloat())), nil
	}
	return relation.Value{}, fmt.Errorf("%w: ABS on %s", ErrTypeMismatch, v.Kind)
}

func (a absExpr) Type() relation.Type { return a.e.Type() }
func (a absExpr) String() string      { return fmt.Sprintf("ABS(%s)", a.e) }

type binExpr struct {
	op   string
	l, r CompiledExpr
}

func (b binExpr) Eval(t relation.Tuple) (relation.Value, error) {
	switch b.op {
	case "AND", "OR":
		return b.evalLogical(t)
	}
	lv, err := b.l.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	rv, err := b.r.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	switch b.op {
	case "=", "!=", "<", "<=", ">", ">=":
		return evalComparison(b.op, lv, rv)
	case "+", "-", "*", "/", "%":
		return evalArith(b.op, lv, rv)
	}
	return relation.Value{}, fmt.Errorf("algebra: unknown binary op %q", b.op)
}

func (b binExpr) evalLogical(t relation.Tuple) (relation.Value, error) {
	lv, err := b.l.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	lb := !lv.IsNull() && lv.Kind == relation.TBool && lv.AsBool()
	if !lv.IsNull() && lv.Kind != relation.TBool {
		return relation.Value{}, fmt.Errorf("%w: %s operand is %s", ErrTypeMismatch, b.op, lv.Kind)
	}
	// Short circuit.
	if b.op == "AND" && !lb {
		return relation.Bool(false), nil
	}
	if b.op == "OR" && lb {
		return relation.Bool(true), nil
	}
	rv, err := b.r.Eval(t)
	if err != nil {
		return relation.Value{}, err
	}
	if !rv.IsNull() && rv.Kind != relation.TBool {
		return relation.Value{}, fmt.Errorf("%w: %s operand is %s", ErrTypeMismatch, b.op, rv.Kind)
	}
	rb := !rv.IsNull() && rv.AsBool()
	if b.op == "AND" {
		return relation.Bool(lb && rb), nil
	}
	return relation.Bool(lb || rb), nil
}

func evalComparison(op string, lv, rv relation.Value) (relation.Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return relation.NullValue(), nil
	}
	comparable := lv.Kind == rv.Kind || (lv.IsNumeric() && rv.IsNumeric())
	if !comparable {
		return relation.Value{}, fmt.Errorf("%w: comparing %s with %s", ErrTypeMismatch, lv.Kind, rv.Kind)
	}
	cmp := lv.Compare(rv)
	switch op {
	case "=":
		return relation.Bool(cmp == 0), nil
	case "!=":
		return relation.Bool(cmp != 0), nil
	case "<":
		return relation.Bool(cmp < 0), nil
	case "<=":
		return relation.Bool(cmp <= 0), nil
	case ">":
		return relation.Bool(cmp > 0), nil
	case ">=":
		return relation.Bool(cmp >= 0), nil
	}
	return relation.Value{}, fmt.Errorf("algebra: unknown comparison %q", op)
}

func evalArith(op string, lv, rv relation.Value) (relation.Value, error) {
	if lv.IsNull() || rv.IsNull() {
		return relation.NullValue(), nil
	}
	if !lv.IsNumeric() || !rv.IsNumeric() {
		return relation.Value{}, fmt.Errorf("%w: %s on %s and %s", ErrTypeMismatch, op, lv.Kind, rv.Kind)
	}
	if lv.Kind == relation.TInt && rv.Kind == relation.TInt {
		a, b := lv.AsInt(), rv.AsInt()
		switch op {
		case "+":
			return relation.Int(a + b), nil
		case "-":
			return relation.Int(a - b), nil
		case "*":
			return relation.Int(a * b), nil
		case "/":
			if b == 0 {
				return relation.Value{}, ErrDivideByZero
			}
			return relation.Int(a / b), nil
		case "%":
			if b == 0 {
				return relation.Value{}, ErrDivideByZero
			}
			return relation.Int(a % b), nil
		}
	}
	a, b := lv.AsFloat(), rv.AsFloat()
	switch op {
	case "+":
		return relation.Float(a + b), nil
	case "-":
		return relation.Float(a - b), nil
	case "*":
		return relation.Float(a * b), nil
	case "/":
		if b == 0 {
			return relation.Value{}, ErrDivideByZero
		}
		return relation.Float(a / b), nil
	case "%":
		return relation.Float(math.Mod(a, b)), nil
	}
	return relation.Value{}, fmt.Errorf("algebra: unknown arithmetic op %q", op)
}

func (b binExpr) Type() relation.Type {
	switch b.op {
	case "AND", "OR", "=", "!=", "<", "<=", ">", ">=":
		return relation.TBool
	}
	if b.l.Type() == relation.TInt && b.r.Type() == relation.TInt {
		return relation.TInt
	}
	return relation.TFloat
}

func (b binExpr) String() string { return fmt.Sprintf("(%s %s %s)", b.l, b.op, b.r) }

// ColumnsOf collects the column names referenced by a parsed expression.
func ColumnsOf(e sql.Expr) []string {
	var out []string
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch ex := e.(type) {
		case *sql.ColumnRef:
			out = append(out, ex.Name)
		case *sql.BinaryExpr:
			walk(ex.L)
			walk(ex.R)
		case *sql.UnaryExpr:
			walk(ex.E)
		case *sql.FuncCall:
			if ex.Arg != nil {
				walk(ex.Arg)
			}
		}
	}
	walk(e)
	return out
}

// SplitConjuncts flattens a predicate into its AND-ed conjuncts.
func SplitConjuncts(e sql.Expr) []sql.Expr {
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op == "AND" {
		return append(SplitConjuncts(be.L), SplitConjuncts(be.R)...)
	}
	return []sql.Expr{e}
}

// JoinConjuncts rebuilds a single predicate from conjuncts (nil for none).
func JoinConjuncts(es []sql.Expr) sql.Expr {
	switch len(es) {
	case 0:
		return nil
	case 1:
		return es[0]
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &sql.BinaryExpr{Op: "AND", L: out, R: e}
	}
	return out
}
