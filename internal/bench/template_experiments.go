package bench

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// E20 measures multi-tenant template sharing: N continual queries that
// differ only in a comparison constant (`price > X` for N different X)
// against one quotes table. Unshared, every refresh round pays N
// differential plan evaluations over the same delta window; shared, the
// round pays ONE template evaluation plus a parameter-index dispatch
// whose cost follows the rows that actually cross member thresholds
// (O(matches), not O(members) x O(window)). Registration is measured
// the same way: the unshared arm prepares N private pipelines, the
// shared arm attaches N members to one group.
//
// The workload is the alerting regime the optimization targets: member
// thresholds sit in the upper price band, most market activity jitters
// below every threshold (a delta every member must inspect and discard),
// and each round a couple of spike rows cross into the band, alerting
// the members they pass. Per member per round the unshared arm scans
// the whole delta window; the shared arm folds only the rows dispatched
// to it.
func E20(scale Scale) (*Table, error) {
	const (
		baseRows = 400
		priceMax = 200.0
	)
	// The 100k-unshared and 1M-shared points take tens of seconds on
	// one core; quick mode (CI) keeps the comparison at 10k and probes
	// scale with the shared arm only.
	sizes := []e20Point{
		{cqs: 10_000, arms: []bool{false, true}},
	}
	if scale.BaseRows > Quick.BaseRows {
		sizes = append(sizes,
			e20Point{cqs: 100_000, arms: []bool{false, true}},
			e20Point{cqs: 1_000_000, arms: []bool{true}})
	} else {
		sizes = append(sizes, e20Point{cqs: 100_000, arms: []bool{true}})
	}
	rounds := 2 + scale.Iterations

	t := &Table{
		ID:    "E20",
		Title: "template sharing: N `price > X` tenants, shared plan vs private plans",
		Note: fmt.Sprintf("|quotes| = %d, %d rounds of 100 sub-threshold jitters + 2 threshold-crossing spikes, X uniform in the top quartile",
			baseRows, rounds),
		Header: []string{"arm", "CQs", "reg/s", "us/round", "steps/round", "matches/round", "cand/match"},
	}
	for _, pt := range sizes {
		for _, shared := range pt.arms {
			row, err := e20Run(pt.cqs, shared, baseRows, priceMax, rounds)
			if err != nil {
				return nil, fmt.Errorf("e20 shared=%v n=%d: %w", shared, pt.cqs, err)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

type e20Point struct {
	cqs  int
	arms []bool
}

func e20Run(nCQs int, shared bool, baseRows int, priceMax float64, rounds int) ([]string, error) {
	rng := rand.New(rand.NewSource(int64(nCQs)))
	s := storage.NewStore()
	if err := s.CreateTable("quotes", relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)); err != nil {
		return nil, err
	}
	// Prices start below every member threshold (thresholds live in
	// [0.75, 1.0) x priceMax), so member results begin empty and stay
	// empty except when a spike row visits the band.
	quiet := 0.7 * priceMax
	tids := make([]relation.TID, 0, baseRows)
	prices := make([]float64, 0, baseRows)
	tx := s.Begin()
	for i := 0; i < baseRows; i++ {
		p := rng.Float64() * quiet
		tid, err := tx.Insert("quotes", []relation.Value{
			relation.Str(fmt.Sprintf("Q%05d", i)), relation.Float(p),
		})
		if err != nil {
			return nil, err
		}
		tids = append(tids, tid)
		prices = append(prices, p)
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}

	reg := obs.NewRegistry()
	m := cq.NewManagerConfig(s, cq.Config{
		UseDRA: true, AutoGC: true, Metrics: reg, ShareTemplates: shared,
	})
	defer func() { _ = m.Close() }()

	regStart := time.Now()
	for i := 0; i < nCQs; i++ {
		x := 0.75*priceMax + 0.25*priceMax*float64(i)/float64(nCQs)
		q := fmt.Sprintf("SELECT * FROM quotes WHERE price > %.4f", x)
		if _, err := m.Register(cq.Def{Name: fmt.Sprintf("t%07d", i), Query: q}); err != nil {
			return nil, err
		}
	}
	regDur := time.Since(regStart)

	times := make([]time.Duration, 0, rounds)
	for r := 0; r < rounds; r++ {
		tx := s.Begin()
		// Background noise: 100 price jitters that never reach the
		// threshold band. Every member's window contains them; no
		// member's result changes.
		for k := 0; k < 100; k++ {
			i := 2 + rng.Intn(len(tids)-2)
			prices[i] += rng.Float64()*4 - 2
			if prices[i] < 0 {
				prices[i] = 0
			}
			if prices[i] > quiet {
				prices[i] = quiet
			}
			if err := tx.Update("quotes", tids[i], []relation.Value{
				relation.Str(fmt.Sprintf("Q%05d", i)), relation.Float(prices[i]),
			}); err != nil {
				return nil, err
			}
		}
		// Two spike rows alternate between the quiet zone and a point
		// inside the threshold band: each crossing alerts exactly the
		// members whose X lies below it.
		for k := 0; k < 2; k++ {
			var p float64
			if r%2 == 0 {
				p = priceMax * (0.75 + 0.25*rng.Float64())
			} else {
				p = rng.Float64() * quiet
			}
			prices[k] = p
			if err := tx.Update("quotes", tids[k], []relation.Value{
				relation.Str(fmt.Sprintf("Q%05d", k)), relation.Float(p),
			}); err != nil {
				return nil, err
			}
		}
		if _, err := tx.Commit(); err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := m.Poll(); err != nil {
			return nil, err
		}
		times = append(times, time.Since(start))
	}
	sortDurations(times)

	arm := "unshared"
	snap := reg.Snapshot()
	stepsPerRound, matchesPerRound, candPerMatch := "-", "-", "-"
	if shared {
		arm = "shared"
		stepsPerRound = fmt.Sprintf("%.1f", float64(snap.Counter("cq.template.steps"))/float64(rounds))
		matches := snap.Counter("cq.template.dispatch_matches")
		matchesPerRound = fmt.Sprintf("%.0f", float64(matches)/float64(rounds))
		if matches > 0 {
			candPerMatch = fmt.Sprintf("%.2f", float64(snap.Counter("cq.template.dispatch_candidates"))/float64(matches))
		}
	}
	return []string{
		arm, fmt.Sprint(nCQs),
		fmt.Sprintf("%.0f", float64(nCQs)/regDur.Seconds()),
		us(times[len(times)/2]),
		stepsPerRound, matchesPerRound, candPerMatch,
	}, nil
}
