package delta

import (
	"testing"

	"github.com/diorama/continual/internal/relation"
)

func TestToSignedDecomposesModifications(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	_ = d.AppendDelete(2, row(2, "B", 20), 2)
	_ = d.AppendModify(3, row(3, "C", 30), row(3, "C", 31), 3)

	s := d.ToSigned()
	if s.Len() != 4 {
		t.Fatalf("signed len = %d, want 4", s.Len())
	}
	pos, neg := 0, 0
	for _, r := range s.Rows {
		if r.Sign > 0 {
			pos++
		} else {
			neg++
		}
	}
	if pos != 2 || neg != 2 {
		t.Errorf("signs = +%d/-%d, want +2/-2", pos, neg)
	}
}

func TestNormalizeCancelsOppositePairs(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	v := row(1, "A", 10)
	s.Rows = append(s.Rows,
		SignedRow{TID: 1, Values: v, Sign: +1},
		SignedRow{TID: 1, Values: v, Sign: -1},
		SignedRow{TID: 2, Values: row(2, "B", 20), Sign: +1},
	)
	n := s.Normalize()
	if n.Len() != 1 {
		t.Fatalf("Normalize len = %d, want 1", n.Len())
	}
	if n.Rows[0].Values[1].AsString() != "B" || n.Rows[0].Sign != 1 {
		t.Errorf("surviving row wrong: %+v", n.Rows[0])
	}
}

func TestNormalizeKeepsMultiplicity(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	v := row(1, "A", 10)
	s.Rows = append(s.Rows,
		SignedRow{TID: 1, Values: v, Sign: -1},
		SignedRow{TID: 1, Values: v, Sign: -1},
		SignedRow{TID: 1, Values: v, Sign: +1},
	)
	n := s.Normalize()
	if n.Len() != 1 || n.Rows[0].Sign != -1 {
		t.Fatalf("net count should be -1, got %+v", n.Rows)
	}
}

func TestToDeltaPairsIntoModification(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	s.Rows = append(s.Rows,
		SignedRow{TID: 5, Values: row(5, "E", 50), Sign: -1},
		SignedRow{TID: 5, Values: row(5, "E", 55), Sign: +1},
		SignedRow{TID: 6, Values: row(6, "F", 60), Sign: +1},
	)
	d := s.ToDelta(9)
	ins, del, mod := d.Counts()
	if ins != 1 || del != 0 || mod != 1 {
		t.Fatalf("Counts = %d/%d/%d, want 1/0/1", ins, del, mod)
	}
	for _, r := range d.Rows() {
		if r.TS != 9 {
			t.Errorf("row ts = %d, want 9", r.TS)
		}
	}
}

func TestToDeltaDropsNoopPairs(t *testing.T) {
	s := &Signed{Schema: stockSchema()}
	v := row(7, "G", 70)
	s.Rows = append(s.Rows,
		SignedRow{TID: 7, Values: v, Sign: -1},
		SignedRow{TID: 7, Values: v, Sign: +1},
	)
	if d := s.ToDelta(1); d.Len() != 0 {
		t.Errorf("no-op pair should vanish, got %d rows", d.Len())
	}
}

func TestApplySignedMaintainsResult(t *testing.T) {
	res := relation.New(stockSchema())
	_ = res.Insert(relation.Tuple{TID: 1, Values: row(1, "A", 10)})
	_ = res.Insert(relation.Tuple{TID: 2, Values: row(2, "B", 20)})

	s := &Signed{Schema: stockSchema()}
	s.Rows = append(s.Rows,
		SignedRow{TID: 1, Values: row(1, "A", 10), Sign: -1}, // remove A
		SignedRow{TID: 3, Values: row(3, "C", 30), Sign: +1}, // add C
		SignedRow{TID: 2, Values: row(2, "B", 25), Sign: +1}, // replace B
	)
	ApplySigned(res, s)
	if res.Len() != 2 || res.Has(1) {
		t.Fatalf("ApplySigned result wrong:\n%s", res)
	}
	b, _ := res.Lookup(2)
	if b.Values[2].AsFloat() != 25 {
		t.Error("replacement did not take")
	}
	if !res.Has(3) {
		t.Error("insert did not take")
	}
}

func TestSignedRoundTripThroughDelta(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	_ = d.AppendModify(2, row(2, "B", 20), row(2, "B", 21), 2)
	_ = d.AppendDelete(3, row(3, "C", 30), 3)

	rt := d.ToSigned().ToDelta(5)
	ins, del, mod := rt.Counts()
	if ins != 1 || del != 1 || mod != 1 {
		t.Fatalf("round trip counts = %d/%d/%d", ins, del, mod)
	}
}

func TestInsertedDeletedRelations(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	_ = d.AppendModify(2, row(2, "B", 20), row(2, "B", 21), 2)
	s := d.ToSigned()
	ins := s.InsertedRelation()
	del := s.DeletedRelation()
	if ins.Len() != 2 || del.Len() != 1 {
		t.Fatalf("inserted=%d deleted=%d, want 2/1", ins.Len(), del.Len())
	}
}
