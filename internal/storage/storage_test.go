package storage

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

func stockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
}

func newStockStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	if err := s.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	return s
}

func mustCommit(t *testing.T, tx *Tx) vclock.Timestamp {
	t.Helper()
	ts, err := tx.Commit()
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return ts
}

func TestCreateDropTable(t *testing.T) {
	s := newStockStore(t)
	if err := s.CreateTable("stocks", stockSchema()); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	if got := s.TableNames(); len(got) != 1 || got[0] != "stocks" {
		t.Errorf("TableNames = %v", got)
	}
	if err := s.DropTable("stocks"); err != nil {
		t.Fatal(err)
	}
	if err := s.DropTable("stocks"); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("double drop err = %v", err)
	}
}

func TestTransactionCommitAppliesAndCapturesDelta(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	tid, err := tx.Insert("stocks", []relation.Value{relation.Str("IBM"), relation.Float(75)})
	if err != nil {
		t.Fatal(err)
	}
	ts := mustCommit(t, tx)

	snap, _ := s.Snapshot("stocks")
	if snap.Len() != 1 {
		t.Fatalf("after commit: %d tuples", snap.Len())
	}
	d, err := s.DeltaSince("stocks", 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Rows()[0].TID != tid || d.Rows()[0].TS != ts {
		t.Fatalf("delta capture wrong: %+v", d.Rows())
	}
	if d.Rows()[0].Old != nil {
		t.Error("insert row should have nil old half")
	}
}

func TestTransactionAbortIsInvisible(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str("IBM"), relation.Float(75)}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	snap, _ := s.Snapshot("stocks")
	if snap.Len() != 0 {
		t.Error("aborted insert visible")
	}
	if _, err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("commit after abort err = %v", err)
	}
}

func TestExample1Transaction(t *testing.T) {
	// Seed the base relation, then run the paper's transaction T.
	s := newStockStore(t)
	seed := s.Begin()
	decTID, _ := seed.Insert("stocks", []relation.Value{relation.Str("DEC"), relation.Float(150)})
	qliTID, _ := seed.Insert("stocks", []relation.Value{relation.Str("QLI"), relation.Float(145)})
	seedTS := mustCommit(t, seed)

	tx := s.Begin()
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str("MAC"), relation.Float(117)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("stocks", decTID, []relation.Value{relation.Str("DEC"), relation.Float(149)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("stocks", qliTID); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)

	d, err := s.DeltaSince("stocks", seedTS)
	if err != nil {
		t.Fatal(err)
	}
	ins, del, mod := d.Counts()
	if ins != 1 || del != 1 || mod != 1 {
		t.Fatalf("delta counts = %d/%d/%d, want 1/1/1", ins, del, mod)
	}
	insView := d.Insertions()
	if insView.Len() != 2 { // MAC + new DEC
		t.Errorf("insertions view len = %d, want 2", insView.Len())
	}
	delView := d.Deletions()
	if delView.Len() != 2 { // QLI + old DEC
		t.Errorf("deletions view len = %d, want 2", delView.Len())
	}
}

func TestReadYourWritesAndFolding(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	tid, _ := tx.Insert("stocks", []relation.Value{relation.Str("A"), relation.Float(1)})
	// Update of a tuple inserted in the same tx folds into the insert.
	if err := tx.Update("stocks", tid, []relation.Value{relation.Str("A"), relation.Float(2)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	d, _ := s.DeltaSince("stocks", 0)
	if d.Len() != 1 || d.Rows()[0].Kind().String() != "insert" {
		t.Fatalf("insert+update should fold to one insert, got %+v", d.Rows())
	}
	snap, _ := s.Snapshot("stocks")
	tu, _ := snap.Lookup(tid)
	if tu.Values[1].AsFloat() != 2 {
		t.Error("folded insert should carry final value")
	}
}

func TestInsertThenDeleteNetsToNothing(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	tid, _ := tx.Insert("stocks", []relation.Value{relation.Str("A"), relation.Float(1)})
	if err := tx.Delete("stocks", tid); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	d, _ := s.DeltaSince("stocks", 0)
	if d.Len() != 0 {
		t.Fatalf("insert+delete in one tx should vanish, got %+v", d.Rows())
	}
	snap, _ := s.Snapshot("stocks")
	if snap.Len() != 0 {
		t.Error("phantom tuple after voided insert")
	}
}

func TestUpdateThenDeleteFoldsToDelete(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	tid, _ := tx.Insert("stocks", []relation.Value{relation.Str("A"), relation.Float(1)})
	mustCommit(t, tx)

	tx2 := s.Begin()
	_ = tx2.Update("stocks", tid, []relation.Value{relation.Str("A"), relation.Float(2)})
	_ = tx2.Delete("stocks", tid)
	mustCommit(t, tx2)

	d, _ := s.DeltaSince("stocks", 1)
	if d.Len() != 1 {
		t.Fatalf("rows = %+v", d.Rows())
	}
	r := d.Rows()[0]
	if r.New != nil || r.Old == nil || r.Old[1].AsFloat() != 1 {
		t.Errorf("update+delete should fold to delete of original value, got %+v", r)
	}
}

func TestWriteConflictDetected(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	tid, _ := tx.Insert("stocks", []relation.Value{relation.Str("A"), relation.Float(1)})
	mustCommit(t, tx)

	t1 := s.Begin()
	t2 := s.Begin()
	if err := t1.Update("stocks", tid, []relation.Value{relation.Str("A"), relation.Float(2)}); err != nil {
		t.Fatal(err)
	}
	if err := t2.Update("stocks", tid, []relation.Value{relation.Str("A"), relation.Float(3)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, t1)
	if _, err := t2.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Errorf("second writer should conflict, got %v", err)
	}
}

func TestSnapshotAtReconstructsHistory(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	tid, _ := tx.Insert("stocks", []relation.Value{relation.Str("IBM"), relation.Float(75)})
	ts1 := mustCommit(t, tx)

	tx2 := s.Begin()
	_ = tx2.Update("stocks", tid, []relation.Value{relation.Str("IBM"), relation.Float(80)})
	ts2 := mustCommit(t, tx2)

	tx3 := s.Begin()
	_ = tx3.Delete("stocks", tid)
	mustCommit(t, tx3)

	at1, err := s.SnapshotAt("stocks", ts1)
	if err != nil {
		t.Fatal(err)
	}
	tu, ok := at1.Lookup(tid)
	if !ok || tu.Values[1].AsFloat() != 75 {
		t.Errorf("SnapshotAt(ts1) = %v, want IBM@75", tu)
	}
	at2, _ := s.SnapshotAt("stocks", ts2)
	tu, ok = at2.Lookup(tid)
	if !ok || tu.Values[1].AsFloat() != 80 {
		t.Errorf("SnapshotAt(ts2) = %v, want IBM@80", tu)
	}
	at0, _ := s.SnapshotAt("stocks", 0)
	if at0.Len() != 0 {
		t.Errorf("SnapshotAt(0) should be empty, got %d", at0.Len())
	}
}

func TestGarbageCollectionAndStaleWindow(t *testing.T) {
	s := newStockStore(t)
	var times []vclock.Timestamp
	for i := 0; i < 5; i++ {
		tx := s.Begin()
		if _, err := tx.Insert("stocks", []relation.Value{relation.Str("S"), relation.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
		times = append(times, mustCommit(t, tx))
	}
	if n := s.CollectGarbage(times[2]); n != 3 {
		t.Fatalf("collected %d rows, want 3", n)
	}
	if _, err := s.DeltaSince("stocks", times[1]); !errors.Is(err, ErrStaleWindow) {
		t.Errorf("stale DeltaSince err = %v", err)
	}
	if _, err := s.SnapshotAt("stocks", times[1]); !errors.Is(err, ErrStaleWindow) {
		t.Errorf("stale SnapshotAt err = %v", err)
	}
	// Still works at or after the horizon.
	if _, err := s.DeltaSince("stocks", times[2]); err != nil {
		t.Errorf("DeltaSince at horizon: %v", err)
	}
	d, _ := s.DeltaSince("stocks", times[2])
	if d.Len() != 2 {
		t.Errorf("remaining delta rows = %d, want 2", d.Len())
	}
}

func TestErrorsOnMissingTableAndTuple(t *testing.T) {
	s := newStockStore(t)
	tx := s.Begin()
	if _, err := tx.Insert("nope", []relation.Value{relation.Str("x"), relation.Float(1)}); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("insert missing table err = %v", err)
	}
	if err := tx.Update("stocks", 999, []relation.Value{relation.Str("x"), relation.Float(1)}); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("update missing tuple err = %v", err)
	}
	if err := tx.Delete("stocks", 999); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("delete missing tuple err = %v", err)
	}
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str("x")}); !errors.Is(err, relation.ErrArity) {
		t.Errorf("arity err = %v", err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := newStockStore(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := s.Begin()
				if _, err := tx.Insert("stocks", []relation.Value{relation.Str("S"), relation.Float(float64(i))}); err != nil {
					t.Error(err)
					return
				}
				if _, err := tx.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := s.Snapshot("stocks"); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.DeltaSince("stocks", 0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap, _ := s.Snapshot("stocks")
	if snap.Len() != 400 {
		t.Errorf("final count = %d, want 400", snap.Len())
	}
	d, _ := s.DeltaSince("stocks", 0)
	if d.Len() != 400 {
		t.Errorf("delta rows = %d, want 400", d.Len())
	}
}

// Property: for random committed histories, SnapshotAt(t) equals the
// shadow state tracked at time t, for every commit point t.
func TestSnapshotAtMatchesShadowProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newStockStore(t)
	type point struct {
		ts    vclock.Timestamp
		state *relation.Relation
	}
	var history []point
	live := []relation.TID{}
	for i := 0; i < 40; i++ {
		tx := s.Begin()
		nops := 1 + rng.Intn(3)
		for j := 0; j < nops; j++ {
			switch op := rng.Intn(3); {
			case op == 0 || len(live) == 0:
				tid, err := tx.Insert("stocks", []relation.Value{relation.Str("S"), relation.Float(float64(rng.Intn(100)))})
				if err != nil {
					t.Fatal(err)
				}
				live = append(live, tid)
			case op == 1:
				victim := live[rng.Intn(len(live))]
				if err := tx.Update("stocks", victim, []relation.Value{relation.Str("S"), relation.Float(float64(rng.Intn(100)))}); err != nil {
					t.Fatal(err)
				}
			default:
				k := rng.Intn(len(live))
				victim := live[k]
				if err := tx.Delete("stocks", victim); err != nil {
					t.Fatal(err)
				}
				live = append(live[:k], live[k+1:]...)
			}
		}
		ts := mustCommit(t, tx)
		snap, err := s.Snapshot("stocks")
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, point{ts: ts, state: snap})
	}
	for _, p := range history {
		got, err := s.SnapshotAt("stocks", p.ts)
		if err != nil {
			t.Fatalf("SnapshotAt(%d): %v", p.ts, err)
		}
		if !got.EqualByTID(p.state) {
			t.Fatalf("SnapshotAt(%d) diverges from shadow", p.ts)
		}
	}
}

func TestChangeCountPerTable(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable("a", stockSchema()); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateTable("b", stockSchema()); err != nil {
		t.Fatal(err)
	}
	if got := s.ChangeCount("a"); got != 0 {
		t.Fatalf("fresh table ChangeCount = %d, want 0", got)
	}
	if got := s.ChangeCount("nope"); got != 0 {
		t.Fatalf("unknown table ChangeCount = %d, want 0", got)
	}

	// One commit touching only a: a bumps once, b stays flat.
	tx := s.Begin()
	tidA, err := tx.Insert("a", []relation.Value{relation.Str("IBM"), relation.Float(75)})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if got := s.ChangeCount("a"); got != 1 {
		t.Fatalf("a after one commit = %d, want 1", got)
	}
	if got := s.ChangeCount("b"); got != 0 {
		t.Fatalf("b untouched = %d, want 0", got)
	}

	// A commit touching both tables bumps each exactly once, regardless
	// of the number of ops per table.
	tx = s.Begin()
	if err := tx.Update("a", tidA, []relation.Value{relation.Str("IBM"), relation.Float(80)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("a", tidA); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("b", []relation.Value{relation.Str("DEC"), relation.Float(150)}); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	if got := s.ChangeCount("a"); got != 2 {
		t.Fatalf("a after two commits = %d, want 2", got)
	}
	if got := s.ChangeCount("b"); got != 1 {
		t.Fatalf("b after one commit = %d, want 1", got)
	}

	// An aborted transaction leaves counters alone.
	tx = s.Begin()
	if _, err := tx.Insert("b", []relation.Value{relation.Str("MAC"), relation.Float(130)}); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := s.ChangeCount("b"); got != 1 {
		t.Fatalf("b after abort = %d, want 1", got)
	}

	// GC does not change base contents, so it never bumps the counter.
	s.CollectGarbage(s.Now())
	if got := s.ChangeCount("a"); got != 2 {
		t.Fatalf("a after GC = %d, want 2", got)
	}
}
