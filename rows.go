package continual

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
)

// Rows is a materialized query result. Values use Go native types:
// int64, float64, string, bool, or nil for SQL NULL.
type Rows struct {
	Columns []string
	Data    [][]any
}

// Len returns the number of rows.
func (r *Rows) Len() int { return len(r.Data) }

// Col returns the index of a named column, or -1.
func (r *Rows) Col(name string) int {
	for i, c := range r.Columns {
		if c == name {
			return i
		}
	}
	// Bare-name match against qualified columns.
	for i, c := range r.Columns {
		if suffixAfterDot(c) == name {
			return i
		}
	}
	return -1
}

func suffixAfterDot(s string) string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return s[i+1:]
		}
	}
	return s
}

// String renders the rows as an aligned table.
func (r *Rows) String() string {
	rel := relationOfRows(r)
	if rel == nil {
		return "(invalid rows)"
	}
	return rel.String()
}

// toAny converts an engine value to a Go native value.
func toAny(v relation.Value) any {
	if v.IsNull() {
		return nil
	}
	switch v.Kind {
	case relation.TInt:
		return v.AsInt()
	case relation.TFloat:
		return v.AsFloat()
	case relation.TString:
		return v.AsString()
	case relation.TBool:
		return v.AsBool()
	default:
		return nil
	}
}

// toValue converts a Go native value to an engine value.
func toValue(v any) (relation.Value, error) {
	switch x := v.(type) {
	case nil:
		return relation.NullValue(), nil
	case int:
		return relation.Int(int64(x)), nil
	case int64:
		return relation.Int(x), nil
	case float64:
		return relation.Float(x), nil
	case string:
		return relation.Str(x), nil
	case bool:
		return relation.Bool(x), nil
	default:
		return relation.Value{}, fmt.Errorf("continual: unsupported value type %T", v)
	}
}

// fromRelation converts an engine relation to public rows.
func fromRelation(rel *relation.Relation) *Rows {
	out := &Rows{Columns: make([]string, rel.Schema().Len())}
	for i := 0; i < rel.Schema().Len(); i++ {
		out.Columns[i] = rel.Schema().Col(i).Name
	}
	out.Data = make([][]any, 0, rel.Len())
	for _, t := range rel.Tuples() {
		row := make([]any, len(t.Values))
		for i, v := range t.Values {
			row[i] = toAny(v)
		}
		out.Data = append(out.Data, row)
	}
	return out
}

// relationOfRows rebuilds an engine relation for rendering only.
func relationOfRows(r *Rows) *relation.Relation {
	cols := make([]relation.Column, len(r.Columns))
	for i, name := range r.Columns {
		cols[i] = relation.Column{Name: name, Type: relation.TString}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return nil
	}
	rel := relation.New(schema)
	for i, row := range r.Data {
		vals := make([]relation.Value, len(row))
		for j, v := range row {
			vals[j] = relation.Str(fmt.Sprint(v))
			if v == nil {
				vals[j] = relation.NullValue()
			}
		}
		_ = rel.Insert(relation.Tuple{TID: relation.TID(i + 1), Values: vals})
	}
	return rel
}

// Modification pairs the old and new values of an in-place change.
type Modification struct {
	Old []any
	New []any
}

// Change is one notification of a continual query: the Seq'th element of
// its result sequence.
type Change struct {
	CQ      string
	Seq     int
	Columns []string

	// Inserted and Deleted are the tuples that entered/left the result;
	// Modified pairs in-place changes. Complete holds the full result in
	// Complete mode.
	Inserted [][]any
	Deleted  [][]any
	Modified []Modification
	Complete [][]any

	// Terminated marks the final notification of a stopped query.
	Terminated bool

	// Dropped is the number of changes this subscriber lost since the
	// one it last received — full Updates buffer under a backpressure
	// policy, or the catch-up gap after Resume. Zero means the change
	// sequence is gap-free; consumers applying differentials should
	// re-fetch Result when Dropped > 0.
	Dropped int
}

func rowsData(rel *relation.Relation) [][]any {
	if rel == nil {
		return nil
	}
	out := make([][]any, 0, rel.Len())
	for _, t := range rel.Tuples() {
		row := make([]any, len(t.Values))
		for i, v := range t.Values {
			row[i] = toAny(v)
		}
		out = append(out, row)
	}
	return out
}

func anyValues(vs []relation.Value) []any {
	if vs == nil {
		return nil
	}
	out := make([]any, len(vs))
	for i, v := range vs {
		out[i] = toAny(v)
	}
	return out
}

func modifications(rows []delta.Row) []Modification {
	out := make([]Modification, 0, len(rows))
	for _, r := range rows {
		out = append(out, Modification{Old: anyValues(r.Old), New: anyValues(r.New)})
	}
	return out
}

// queryRelation plans, optimizes and executes a SELECT internally.
func (db *DB) queryRelation(query string) (*relation.Relation, error) {
	plan, err := algebra.PlanSQL(query, db.store.Live())
	if err != nil {
		return nil, err
	}
	return algebra.NewExecutor(db.store.Live()).Execute(algebra.Optimize(plan))
}
