package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/remote"
	"github.com/diorama/continual/internal/storage"
)

// startServer brings up an instrumented daemon with one seeded table,
// mirroring what `cqd -demo` does.
func startServer(t *testing.T) (addr string, store *storage.Store) {
	t.Helper()
	store = storage.NewStore()
	reg := obs.NewRegistry()
	store.Instrument(reg)
	schema, err := relation.NewSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.CreateTable("stocks", schema); err != nil {
		t.Fatal(err)
	}
	tx := store.Begin()
	for _, row := range [][]relation.Value{
		{relation.Str("DEC"), relation.Float(150)},
		{relation.Str("IBM"), relation.Float(75)},
	} {
		if _, err := tx.Insert("stocks", row); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	srv := remote.NewServer(store)
	srv.Instrument(reg)
	addr, err = srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return addr, store
}

// captureStdout runs fn with os.Stdout redirected to a pipe.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	_ = w.Close()
	out, _ := io.ReadAll(r)
	if runErr != nil {
		t.Fatalf("run: %v\noutput:\n%s", runErr, out)
	}
	return string(out)
}

func TestStatsSubcommand(t *testing.T) {
	addr, _ := startServer(t)

	// Generate some server work so the counters are non-zero.
	out := captureStdout(t, func() error {
		return run([]string{"-addr", addr, "query", "SELECT * FROM stocks WHERE price > 120"})
	})
	if !strings.Contains(out, "DEC") {
		t.Fatalf("query output missing row: %q", out)
	}

	out = captureStdout(t, func() error {
		return run([]string{"-addr", addr, "stats"})
	})
	for _, want := range []string{
		"counters",
		"remote.queries_served",
		"remote.bytes_out",
		"storage.commits",
		"storage.delta_len.stocks",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// queries_served must have counted the query above.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "remote.queries_served") && strings.Contains(line, " 0") {
			t.Errorf("remote.queries_served still zero: %q", line)
		}
	}
}

func TestStatsAgainstUninstrumentedServer(t *testing.T) {
	// A bare server (no Instrument call) must still answer OpStats with
	// its legacy work counters.
	store := storage.NewStore()
	srv := remote.NewServer(store)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	out := captureStdout(t, func() error {
		return run([]string{"-addr", addr, "stats"})
	})
	if !strings.Contains(out, "remote.queries_served") {
		t.Errorf("fallback stats missing legacy counters:\n%s", out)
	}
}
