package continual

import (
	"github.com/diorama/continual/internal/storage"
)

// HealthStatus is the engine's self-assessment, served on /healthz by
// StatsHandler (and cqd) and readable programmatically via DB.Health.
type HealthStatus struct {
	// Status is "ok", "degraded" (some queries quarantined or the soft
	// delta watermark tripped — the engine is shedding load but still
	// accepting writes), or "overloaded" (hard watermark: writes are
	// rejected with ErrOverloaded).
	Status string `json:"status"`
	// Ready reports whether the engine should receive traffic: false
	// only when overloaded (a degraded engine still serves).
	Ready bool `json:"ready"`

	// Healthy / Probation / Quarantined count live continual queries by
	// guard state. A probing query has served its quarantine backoff
	// and is being given one refresh to prove itself.
	Healthy     int `json:"healthy"`
	Probation   int `json:"probation"`
	Quarantined int `json:"quarantined"`
	// DegradedCQs names the queries in probation or quarantine.
	DegradedCQs []string `json:"degraded_cqs,omitempty"`

	// Overload is the delta-store watermark level: "none", "soft",
	// "hard".
	Overload string `json:"overload"`
	// DeltaRows / DeltaBytes are the retained differential usage the
	// watermarks measure.
	DeltaRows  int   `json:"delta_rows"`
	DeltaBytes int64 `json:"delta_bytes"`
}

// Health reports the engine's current guard state: per-query quarantine
// counts and the delta-store overload level.
func (db *DB) Health() HealthStatus {
	h := db.manager.Health()
	ov := db.store.Overload()
	rows, bytes := db.store.DeltaUsage()
	st := HealthStatus{
		Healthy:     h.Healthy,
		Probation:   h.Probation,
		Quarantined: h.Quarantined,
		DegradedCQs: h.Degraded,
		Overload:    ov.String(),
		DeltaRows:   rows,
		DeltaBytes:  bytes,
	}
	switch {
	case ov >= storage.OverloadHard:
		st.Status = "overloaded"
	case ov >= storage.OverloadSoft || h.Quarantined > 0 || h.Probation > 0:
		st.Status = "degraded"
	default:
		st.Status = "ok"
	}
	st.Ready = ov < storage.OverloadHard
	return st
}
