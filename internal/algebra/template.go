package algebra

import (
	"sort"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// A Template is a plan with its comparison constants stripped out. Two
// continual queries that differ only in constants — `price > 5` vs
// `price > 90` — reduce to the same template with one parameter slot
// each, so a single prepared evaluation of the template serves both: the
// template delta is computed once and each subscriber takes the subset
// of rows its own constants select.
//
// Stripping σ_c out of the plan and re-applying it at the root is only
// sound when the compared column's value survives verbatim to the
// output row (selection commutes with projection/join on pass-through
// columns, and with difference — which is what makes it valid on
// deltas too). ExtractTemplate proves that per slot by walking column
// provenance from the root down, and refuses plans where it can't.
type Template struct {
	// Fingerprint identifies the template: same fingerprint ⇒ same
	// stripped plan, same output schema, same slot layout.
	Fingerprint uint64
	// Plan is the constant-stripped plan. Its output schema is
	// identical to the original plan's.
	Plan Plan
	// Slots describes each stripped comparison in canonical order. The
	// parameter vector returned by ExtractTemplate is index-aligned
	// with Slots.
	Slots []ParamSlot
}

// ParamSlot is one stripped comparison: `<column> <op> <constant>`,
// normalized so the column is always on the left.
type ParamSlot struct {
	// Col is the root-schema name of the compared column.
	Col string
	// Idx is the column's index in the template's output schema — the
	// dispatch stage reads row.Values[Idx].
	Idx int
	// Op is one of "=", "<", "<=", ">", ">=".
	Op string
	// Kind is the column's type.
	Kind relation.Type
}

// strippableOps are the comparison operators a slot may use. "!=" is
// excluded on purpose: the dispatch index answers "which subscribers
// match this row" from equality and interval lookups, and a not-equals
// parameter would match almost every subscriber, defeating O(matches).
var strippableOps = map[string]string{
	"=": "=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

// flipOp mirrors an operator across the comparison: `5 < price` is
// normalized to `price > 5`.
var flipOp = map[string]string{
	"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}

// ExtractTemplate splits a plan into a constant-stripped template and
// the parameter vector holding the stripped constants (index-aligned
// with Template.Slots). ok is false when the plan has no strippable
// comparison or contains a node the rewrite cannot prove safe
// (aggregates, DISTINCT, ORDER BY, LIMIT, or a comparison on a column
// that does not survive to the output row).
func ExtractTemplate(p Plan) (t *Template, params []relation.Value, ok bool) {
	if !templatable(p) {
		return nil, nil, false
	}
	x := &extractor{root: p.Schema()}
	stripped := x.rewrite(p, identityMap(p.Schema().Len()))
	if x.failed || len(x.slots) == 0 {
		return nil, nil, false
	}
	// The rewrite must preserve the output schema exactly — dispatch
	// evaluates slots against template delta rows by root index.
	if !stripped.Schema().Equal(p.Schema()) {
		return nil, nil, false
	}
	x.canonicalize()
	return &Template{
		Fingerprint: templateFingerprint(stripped, x.slots),
		Plan:        stripped,
		Slots:       x.slots,
	}, x.params, true
}

// MatchRow reports whether a template-delta row satisfies every slot
// under the given parameter vector, with the engine's comparison
// semantics: a NULL column value satisfies nothing.
func (t *Template) MatchRow(params, row []relation.Value) bool {
	for i, s := range t.Slots {
		if !slotMatches(s, params[i], row) {
			return false
		}
	}
	return true
}

func slotMatches(s ParamSlot, param relation.Value, row []relation.Value) bool {
	v := row[s.Idx]
	if v.IsNull() || param.IsNull() {
		return false
	}
	switch s.Op {
	case "=":
		return v.Equal(param)
	case "<":
		return v.Compare(param) < 0
	case "<=":
		return v.Compare(param) <= 0
	case ">":
		return v.Compare(param) > 0
	case ">=":
		return v.Compare(param) >= 0
	}
	return false
}

// templatable gates the plan shapes the strip-and-redispatch rewrite is
// proven for: Scan/Select/Project/Join compositions. Aggregate changes
// row identity and multiplicity, Distinct collapses by value, and
// Sort/Limit are order-sensitive — a selection does not commute past
// any of them row-by-row.
func templatable(p Plan) bool {
	switch p.(type) {
	case *ScanPlan, *SelectPlan, *ProjectPlan, *JoinPlan:
		for _, c := range p.Children() {
			if !templatable(c) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// extractor carries rewrite state. colMap arguments map a node's schema
// column indices to root output indices, -1 where the column does not
// survive verbatim to the output.
type extractor struct {
	root   relation.Schema
	slots  []ParamSlot
	params []relation.Value
	failed bool
}

func identityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func (x *extractor) rewrite(p Plan, colMap []int) Plan {
	if x.failed {
		return p
	}
	switch n := p.(type) {
	case *ScanPlan:
		return n
	case *SelectPlan:
		// The predicate reads the input schema, which equals this
		// node's schema, so the same colMap applies to both.
		residual := x.stripConjuncts(n.Input.Schema(), colMap, SplitConjuncts(n.Pred))
		in := x.rewrite(n.Input, colMap)
		if len(residual) == 0 {
			return in
		}
		return &SelectPlan{Input: in, Pred: JoinConjuncts(residual)}
	case *ProjectPlan:
		childMap := x.projectChildMap(n, colMap)
		in := x.rewrite(n.Input, childMap)
		out, err := NewProjectPlan(in, n.Items)
		if err != nil {
			x.failed = true
			return p
		}
		return out
	case *JoinPlan:
		ln := n.Left.Schema().Len()
		left := x.rewrite(n.Left, colMap[:ln])
		right := x.rewrite(n.Right, colMap[ln:])
		out, err := NewJoinPlan(left, right, n.On)
		if err != nil {
			x.failed = true
			return p
		}
		return out
	default:
		x.failed = true
		return p
	}
}

// projectChildMap derives the provenance map for a projection's input:
// input column j survives to root index r iff some projected item is a
// bare reference to j and that item's own output column maps to r.
func (x *extractor) projectChildMap(n *ProjectPlan, colMap []int) []int {
	in := n.Input.Schema()
	childMap := make([]int, in.Len())
	for i := range childMap {
		childMap[i] = -1
	}
	for i, it := range n.Items {
		if colMap[i] < 0 {
			continue
		}
		ref, isRef := it.Expr.(*sql.ColumnRef)
		if !isRef {
			continue
		}
		j, found := in.ColIndex(ref.Name)
		if !found {
			continue
		}
		if childMap[j] < 0 {
			childMap[j] = colMap[i]
		}
	}
	return childMap
}

// stripConjuncts pulls strippable comparisons out of a conjunct list,
// recording slots and parameters, and returns the residual conjuncts in
// canonical (encoding-hash) order so equivalent predicates written in
// different conjunct orders reach the same template.
func (x *extractor) stripConjuncts(in relation.Schema, colMap []int, conjs []sql.Expr) []sql.Expr {
	var residual []sql.Expr
	for _, c := range conjs {
		if slot, v, ok := x.stripOne(in, colMap, c); ok {
			x.slots = append(x.slots, slot)
			x.params = append(x.params, v)
			continue
		}
		residual = append(residual, c)
	}
	sort.SliceStable(residual, func(i, j int) bool {
		return exprHash(residual[i]) < exprHash(residual[j])
	})
	return residual
}

func (x *extractor) stripOne(in relation.Schema, colMap []int, c sql.Expr) (ParamSlot, relation.Value, bool) {
	be, isBin := c.(*sql.BinaryExpr)
	if !isBin {
		return ParamSlot{}, relation.Value{}, false
	}
	op, strippable := strippableOps[be.Op]
	if !strippable {
		return ParamSlot{}, relation.Value{}, false
	}
	col, isCol := be.L.(*sql.ColumnRef)
	lit, isLit := be.R.(*sql.Literal)
	if !isCol || !isLit {
		// Literal on the left: flip.
		if col, isCol = be.R.(*sql.ColumnRef); !isCol {
			return ParamSlot{}, relation.Value{}, false
		}
		if lit, isLit = be.L.(*sql.Literal); !isLit {
			return ParamSlot{}, relation.Value{}, false
		}
		op = flipOp[op]
	}
	if lit.Value.IsNull() {
		// NULL comparisons never match; keep them in the plan.
		return ParamSlot{}, relation.Value{}, false
	}
	j, found := in.ColIndex(col.Name)
	if !found {
		return ParamSlot{}, relation.Value{}, false
	}
	rootIdx := colMap[j]
	if rootIdx < 0 {
		// The column does not survive to the output row, so the
		// dispatch stage could not re-check this comparison.
		return ParamSlot{}, relation.Value{}, false
	}
	kind := x.root.Col(rootIdx).Type
	if !(kind == lit.Value.Kind ||
		(lit.Value.IsNumeric() && (kind == relation.TInt || kind == relation.TFloat))) {
		// Incomparable kinds would error at eval time; leave the
		// comparison where the engine can report it.
		return ParamSlot{}, relation.Value{}, false
	}
	return ParamSlot{
		Col:  x.root.Col(rootIdx).Name,
		Idx:  rootIdx,
		Op:   op,
		Kind: kind,
	}, lit.Value, true
}

// canonicalize orders slots (and the aligned parameter vector) by
// (Idx, Op, Col) so conjunct order in the source text does not change
// the template fingerprint. Ties (`price > 5 AND price > 9`) keep
// source order; slot layouts still agree across members because the tie
// slots are interchangeable.
func (x *extractor) canonicalize() {
	order := make([]int, len(x.slots))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := x.slots[order[a]], x.slots[order[b]]
		if sa.Idx != sb.Idx {
			return sa.Idx < sb.Idx
		}
		if sa.Op != sb.Op {
			return sa.Op < sb.Op
		}
		return sa.Col < sb.Col
	})
	slots := make([]ParamSlot, len(order))
	params := make([]relation.Value, len(order))
	for i, o := range order {
		slots[i] = x.slots[o]
		params[i] = x.params[o]
	}
	x.slots, x.params = slots, params
}

// exprHash is the canonical-encoding hash of a single expression, used
// only for ordering residual conjuncts.
func exprHash(e sql.Expr) uint64 {
	w := newFPWriter()
	w.expr(e)
	return w.sum()
}

// templateFingerprint hashes the stripped plan, its output schema and
// the slot layout. It lives in a distinct tag space from
// PlanFingerprint so a template can never collide with a plain plan
// fingerprint.
func templateFingerprint(p Plan, slots []ParamSlot) uint64 {
	w := newFPWriter()
	w.tag(fpTemplate)
	w.tag(fpVersion)
	w.plan(p)
	w.schema(p.Schema())
	w.uvarint(uint64(len(slots)))
	for _, s := range slots {
		w.str(s.Col)
		w.uvarint(uint64(s.Idx))
		w.str(s.Op)
		w.tag(byte(s.Kind))
	}
	return w.sum()
}
