package remote

import (
	"strings"
	"testing"

	"github.com/diorama/continual/internal/storage"
)

func TestCheckpointOpRefusedWithoutHandler(t *testing.T) {
	_, _, client := startServer(t)
	err := client.Checkpoint()
	if err == nil || !strings.Contains(err.Error(), "no durable store") {
		t.Fatalf("checkpoint on bare server: %v", err)
	}
}

func TestCheckpointOpInvokesHandler(t *testing.T) {
	store := storage.NewStore()
	if err := store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	calls := 0
	srv.SetCheckpointFunc(func() error { calls++; return nil })
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	if err := client.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := client.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("handler invoked %d times, want 2", calls)
	}
}

func TestCheckpointOpString(t *testing.T) {
	if OpCheckpoint.String() != "Checkpoint" {
		t.Fatalf("OpCheckpoint.String() = %q", OpCheckpoint.String())
	}
	if !OpCheckpoint.retryable() {
		t.Fatal("checkpoint is idempotent and must be retryable")
	}
}
