package bench

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/workload"
)

// E22 measures cascading materialization (SELECT ... INTO pipelines).
// Two claims are on trial:
//
//  1. Depth costs one commit hop, not one recomputation: a chain of D
//     materialization stages adds D ordinary delta commits between a
//     base-table write and the leaf notification, so commit-to-leaf
//     latency grows roughly linearly in D and stays in refresh-cost
//     territory at every update rate (the "latency" rows, push mode,
//     depth x rate).
//  2. A leaf's refresh cost scales with the delta flowing through its
//     upstream's derived table, not with that table's result size: a
//     pipeline over a 4x larger base with the same per-round batch
//     refreshes in the same time, while a 4x larger batch over the same
//     base does not (the "scaling" rows, staged poll mode).
//
// Columns: mode (latency D=depth / scaling), the arrival gap or round
// batch, base rows, latency samples or measured rounds, p50/p99
// commit-to-leaf-notify latency (latency rows) or median staged-round
// time (scaling rows), and end-to-end refreshes per second.
func E22(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E22",
		Title: "cascading CQs: INTO pipeline depth, latency, and delta-bound leaf cost",
		Note: fmt.Sprintf("base %d rows, seed per config, host cores %d; latency rows drive push mode, scaling rows one staged Poll per round",
			scale.BaseRows, runtime.NumCPU()),
		Header: []string{"mode", "gap/batch", "base rows", "samples", "p50 ms", "p99 ms", "refr/s"},
	}

	// Depth x update rate: commit-to-leaf latency through 1..3
	// materialization stages under a fast and a slow arrival process.
	for _, depth := range []int{1, 2, 3} {
		for _, gap := range []time.Duration{5 * time.Millisecond, 20 * time.Millisecond} {
			row, err := e22Latency(scale, depth, gap)
			if err != nil {
				return nil, fmt.Errorf("e22 depth=%d gap=%s: %w", depth, gap, err)
			}
			t.Rows = append(t.Rows, row)
		}
	}

	// Delta-vs-result scaling: fixed batch over growing bases (cost must
	// stay flat), then growing batches over a fixed base (cost must grow).
	for _, cfg := range []struct {
		baseRows, batch int
	}{
		{scale.BaseRows / 4, 64},
		{scale.BaseRows, 64},
		{scale.BaseRows * 4, 64},
		{scale.BaseRows, 16},
		{scale.BaseRows, 256},
	} {
		row, err := e22Scaling(scale, cfg.baseRows, cfg.batch)
		if err != nil {
			return nil, fmt.Errorf("e22 scaling base=%d batch=%d: %w", cfg.baseRows, cfg.batch, err)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// e22Pipeline builds base -> s1 INTO d1 -> ... -> sD INTO dD -> leaf,
// with pass-through predicates so every base delta reaches the leaf.
// The returned generator writes the base table.
func e22Pipeline(store *storage.Store, mgr *cq.Manager, depth, seedRows int) (*workload.Stocks, error) {
	if err := store.CreateTable("base", workload.StockSchema()); err != nil {
		return nil, err
	}
	gen := workload.NewStocks(store, "base", 7, workload.DefaultMix)
	if err := gen.Seed(seedRows); err != nil {
		return nil, err
	}
	src := "base"
	for i := 1; i <= depth; i++ {
		tgt := fmt.Sprintf("d%d", i)
		def := cq.Def{
			Name:  fmt.Sprintf("s%d", i),
			Query: fmt.Sprintf("SELECT * INTO %s FROM %s WHERE price > 1", tgt, src),
		}
		if _, err := mgr.Register(def); err != nil {
			return nil, err
		}
		src = tgt
	}
	leaf := cq.Def{
		Name:        "leaf",
		Query:       fmt.Sprintf("SELECT * FROM %s WHERE price > 1", src),
		NotifyEmpty: true,
	}
	if _, err := mgr.Register(leaf); err != nil {
		return nil, err
	}
	return gen, nil
}

// e22Latency drives one (depth, gap) configuration in push mode: every
// base commit records its wall-clock instant, the leaf subscription
// resolves it when a notification's ExecTS covers the commit, and the
// poll loop runs only as the fallback it is in production.
func e22Latency(scale Scale, depth int, gap time.Duration) ([]string, error) {
	const pollTick = 50 * time.Millisecond
	nCommits := 4 * scale.Iterations
	if nCommits < 12 {
		nCommits = 12
	}
	batch := scale.BaseRows / 200
	if batch < 8 {
		batch = 8
	}

	reg := obs.NewRegistry()
	store := storage.NewStore()
	store.Instrument(reg)
	mgr := cq.NewManagerConfig(store, cq.Config{UseDRA: true, AutoGC: true, Push: true, Metrics: reg})
	defer func() { _ = mgr.Close() }()
	gen, err := e22Pipeline(store, mgr, depth, scale.BaseRows)
	if err != nil {
		return nil, err
	}

	var probeMu sync.Mutex
	sent := make(map[vclock.Timestamp]time.Time)
	var lats []time.Duration
	cancel, err := mgr.SubscribeFunc("leaf", func(n cq.Notification, closed bool) {
		if closed {
			return
		}
		now := time.Now()
		probeMu.Lock()
		for ts, at := range sent {
			if ts <= n.ExecTS {
				lats = append(lats, now.Sub(at))
				delete(sent, ts)
			}
		}
		probeMu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	defer cancel()
	if err := mgr.Start(pollTick); err != nil {
		return nil, err
	}

	base := reg.Snapshot().Counter("cq.refreshes")
	start := time.Now()
	err = workload.Steady(gap).Run(nCommits, func(int) error {
		if err := gen.Batch(batch); err != nil {
			return err
		}
		// Single writer: Now() is this commit's timestamp.
		probeMu.Lock()
		sent[store.Now()] = time.Now()
		probeMu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Drain: passive first so tail commits resolve through the pipeline
	// being measured, then forced polls for any skipped residue.
	mgr.FlushPush()
	remaining := func() int {
		probeMu.Lock()
		defer probeMu.Unlock()
		return len(sent)
	}
	deadline := time.Now().Add(4*pollTick + 100*time.Millisecond)
	for time.Now().Before(deadline) && remaining() > 0 {
		time.Sleep(2 * time.Millisecond)
	}
	for i := 0; i < 5 && remaining() > 0; i++ {
		if _, err := mgr.Poll(); err != nil {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	refreshes := reg.Snapshot().Counter("cq.refreshes") - base
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	sortDurations(lats)
	p50, p99 := time.Duration(0), time.Duration(0)
	if len(lats) > 0 {
		p50 = lats[len(lats)*50/100]
		p99 = lats[min(len(lats)-1, len(lats)*99/100)]
	}
	return []string{
		fmt.Sprintf("latency D=%d", depth),
		gap.String(),
		fmt.Sprint(scale.BaseRows),
		fmt.Sprint(len(lats)),
		fmt.Sprintf("%.2f", float64(p50.Nanoseconds())/1e6),
		fmt.Sprintf("%.2f", float64(p99.Nanoseconds())/1e6),
		fmt.Sprintf("%.0f", float64(refreshes)/elapsed.Seconds()),
	}, nil
}

// e22Scaling measures one staged-poll round (commit batch, then one
// Poll that propagates it through a depth-2 pipeline) for a given base
// size and batch size. The derived tables hold ~baseRows rows
// throughout; if leaf refresh cost scaled with upstream RESULT size the
// round time would track baseRows, if it scales with the DELTA it
// tracks batch.
func e22Scaling(scale Scale, baseRows, batch int) ([]string, error) {
	const depth = 2
	reg := obs.NewRegistry()
	store := storage.NewStore()
	store.Instrument(reg)
	mgr := cq.NewManagerConfig(store, cq.Config{UseDRA: true, AutoGC: true, Metrics: reg})
	defer func() { _ = mgr.Close() }()
	gen, err := e22Pipeline(store, mgr, depth, baseRows)
	if err != nil {
		return nil, err
	}

	// Warm one round so first-touch costs (window allocation, prepared
	// operand caches) stay out of the measurement.
	if err := gen.Batch(batch); err != nil {
		return nil, err
	}
	if _, err := mgr.Poll(); err != nil {
		return nil, err
	}

	rounds := 2 * scale.Iterations
	if rounds < 6 {
		rounds = 6
	}
	base := reg.Snapshot().Counter("cq.refreshes")
	times := make([]time.Duration, 0, rounds)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		if err := gen.Batch(batch); err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := mgr.Poll(); err != nil {
			return nil, err
		}
		times = append(times, time.Since(t0))
	}
	elapsed := time.Since(start)
	refreshes := reg.Snapshot().Counter("cq.refreshes") - base
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	sortDurations(times)
	p50 := times[len(times)/2]
	p99 := times[len(times)-1]
	return []string{
		fmt.Sprintf("scaling D=%d b=%d", depth, batch),
		fmt.Sprint(batch),
		fmt.Sprint(baseRows),
		fmt.Sprint(rounds),
		fmt.Sprintf("%.2f", float64(p50.Nanoseconds())/1e6),
		fmt.Sprintf("%.2f", float64(p99.Nanoseconds())/1e6),
		fmt.Sprintf("%.0f", float64(refreshes)/elapsed.Seconds()),
	}, nil
}
