package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/diorama/continual/internal/relation"
)

// Parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse parses a single statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after statement", p.cur())
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement specifically.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "expected a SELECT statement"}
	}
	return sel, nil
}

// ParseExpr parses a standalone expression (used for trigger conditions).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after expression", p.cur())
	}
	return e, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == TokEOF }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() Token {
	t := p.cur()
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().Kind == TokKeyword && p.cur().Text == kw {
		p.advance()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %s", kw, p.cur())
	}
	return nil
}

// peekKeyword reports whether the current token is the keyword.
func (p *parser) peekKeyword(kw string) bool {
	return p.cur().Kind == TokKeyword && p.cur().Text == kw
}

// acceptOp consumes the operator if present.
func (p *parser) acceptOp(op string) bool {
	if p.cur().Kind == TokOp && p.cur().Text == op {
		p.advance()
		return true
	}
	return false
}

// expectOp consumes the operator or errors.
func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, got %s", op, p.cur())
	}
	return nil
}

// expectIdent consumes an identifier (or non-reserved keyword used as a
// name) and returns its text.
func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.Kind == TokIdent {
		p.advance()
		return t.Text, nil
	}
	return "", p.errf("expected identifier, got %s", t)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.peekKeyword("SELECT"):
		return p.parseSelect()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("UPDATE"):
		return p.parseUpdate()
	case p.peekKeyword("DELETE"):
		return p.parseDelete()
	case p.peekKeyword("CREATE"):
		return p.parseCreate()
	case p.peekKeyword("DROP"):
		return p.parseDrop()
	default:
		return nil, p.errf("expected a statement, got %s", p.cur())
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	sel.Distinct = p.acceptKeyword("DISTINCT")

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKeyword("INTO") {
		target, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.Into = target
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	first, err := p.parseTableRef(false)
	if err != nil {
		return nil, err
	}
	sel.From = append(sel.From, first)
	for {
		switch {
		case p.acceptOp(","):
			ref, err := p.parseTableRef(false)
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, ref)
		case p.peekKeyword("INNER") || p.peekKeyword("JOIN"):
			if p.acceptKeyword("INNER") {
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			} else {
				p.advance() // JOIN
			}
			joined, err := p.parseTableRef(true)
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, joined)
		default:
			goto fromDone
		}
	}
fromDone:

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, p.errf("LIMIT must be non-negative")
		}
		sel.Limit = n
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.cur().Kind == TokIdent {
		item.Alias = p.advance().Text
	}
	return item, nil
}

func (p *parser) parseTableRef(withOn bool) (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().Kind == TokIdent {
		ref.Alias = p.advance().Text
	}
	if withOn {
		if err := p.expectKeyword("ON"); err != nil {
			return TableRef{}, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return TableRef{}, err
		}
		ref.On = on
	}
	return ref, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return stmt, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Value: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	return stmt, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("TABLE") {
		return p.parseCreateTable()
	}
	if p.acceptKeyword("CONTINUAL") {
		if err := p.expectKeyword("QUERY"); err != nil {
			return nil, err
		}
		return p.parseCreateCQ()
	}
	return nil, p.errf("expected TABLE or CONTINUAL QUERY after CREATE")
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: table}, nil
}

func (p *parser) parseCreateTable() (*CreateTableStmt, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: table}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.Kind != TokKeyword {
			return nil, p.errf("expected column type, got %s", t)
		}
		var typ relation.Type
		switch t.Text {
		case "INT":
			typ = relation.TInt
		case "FLOAT":
			typ = relation.TFloat
		case "STRING":
			typ = relation.TString
		case "BOOL":
			typ = relation.TBool
		default:
			return nil, p.errf("unknown column type %s", t)
		}
		p.advance()
		stmt.Columns = append(stmt.Columns, ColumnDef{Name: name, Type: typ})
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *parser) parseCreateCQ() (*CreateCQStmt, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	stmt := &CreateCQStmt{
		Name:   name,
		Select: sel,
		// Defaults: re-evaluate on every update batch, deliver differences.
		Trigger: TriggerSpec{Kind: TriggerUpdates, Updates: 1},
		Mode:    ModeDifferential,
	}
	if p.acceptKeyword("TRIGGER") {
		switch {
		case p.acceptKeyword("EVERY"):
			n, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			stmt.Trigger = TriggerSpec{Kind: TriggerEvery, Every: n}
		case p.acceptKeyword("EPSILON"):
			bound, err := p.parseNumberLiteral()
			if err != nil {
				return nil, err
			}
			spec := TriggerSpec{Kind: TriggerEpsilon, Bound: bound}
			if p.acceptKeyword("ON") {
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				spec.On = on
			}
			stmt.Trigger = spec
		case p.acceptKeyword("UPDATES"):
			n, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			stmt.Trigger = TriggerSpec{Kind: TriggerUpdates, Updates: n}
		default:
			return nil, p.errf("expected EVERY, EPSILON or UPDATES after TRIGGER")
		}
	}
	if p.acceptKeyword("MODE") {
		switch {
		case p.acceptKeyword("DIFFERENTIAL"):
			stmt.Mode = ModeDifferential
		case p.acceptKeyword("COMPLETE"):
			stmt.Mode = ModeComplete
		case p.acceptKeyword("DELETIONS"):
			stmt.Mode = ModeDeletions
		default:
			return nil, p.errf("expected DIFFERENTIAL, COMPLETE or DELETIONS after MODE")
		}
	}
	if p.acceptKeyword("STOP") {
		switch {
		case p.acceptKeyword("AFTER"):
			n, err := p.parseIntLiteral()
			if err != nil {
				return nil, err
			}
			stmt.Stop = StopSpec{AfterN: n}
		case p.acceptKeyword("NEVER"):
			stmt.Stop = StopSpec{}
		default:
			return nil, p.errf("expected AFTER or NEVER after STOP")
		}
	}
	return stmt, nil
}

func (p *parser) parseIntLiteral() (int64, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, p.errf("expected integer, got %s", t)
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	p.advance()
	return n, nil
}

func (p *parser) parseNumberLiteral() (float64, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, p.errf("expected number, got %s", t)
	}
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, p.errf("bad number %q", t.Text)
	}
	p.advance()
	return f, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((= != < <= > >=) addExpr)?
//	addExpr := mulExpr ((+ -) mulExpr)*
//	mulExpr := unary ((* / %) unary)*
//	unary   := - unary | primary
//	primary := literal | funcCall | columnRef | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", E: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, L: left, R: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Value: relation.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.Text)
		}
		return &Literal{Value: relation.Int(n)}, nil

	case TokString:
		p.advance()
		return &Literal{Value: relation.Str(t.Text)}, nil

	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.advance()
			return &Literal{Value: relation.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &Literal{Value: relation.Bool(false)}, nil
		case "NULL":
			p.advance()
			return &Literal{Value: relation.NullValue()}, nil
		case "SUM", "COUNT", "AVG", "MIN", "MAX", "ABS":
			p.advance()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			fc := &FuncCall{Name: t.Text}
			if t.Text == "COUNT" && p.acceptOp("*") {
				fc.Star = true
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Arg = arg
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t)

	case TokIdent:
		p.advance()
		name := t.Text
		if p.acceptOp(".") {
			part, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = name + "." + part
		}
		return &ColumnRef{Name: name}, nil

	case TokOp:
		if t.Text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected %s in expression", t)
}
