//go:build !race && !batchpoison

package batch

// poisonEnabled gates the use-after-release assertions. In regular
// builds it is a false constant, so every check() call compiles away
// and the hot path pays nothing for the discipline.
const poisonEnabled = false
