package continual

import (
	"errors"
	"sync"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// BackpressurePolicy selects what happens when a subscription's Updates
// buffer is full. Whatever the policy, the engine never blocks on a slow
// consumer — a consumer that falls behind costs itself changes, never
// the refresh pipeline.
type BackpressurePolicy int

const (
	// DropNewest (the default): the new change is discarded; the
	// consumer keeps its queued backlog and sees the gap in the next
	// delivered Change.Dropped.
	DropNewest BackpressurePolicy = iota
	// DropOldest: the oldest queued change is evicted to make room, so
	// the consumer always converges on the freshest state.
	DropOldest
	// Disconnect: the Updates channel closes. The subscription's
	// Resume method reattaches with a differential catch-up.
	Disconnect
)

// SubscribeOptions tunes SubscribeWith.
type SubscribeOptions struct {
	// Buffer is the Updates channel capacity (default 64).
	Buffer int
	// Policy is the full-buffer backpressure policy.
	Policy BackpressurePolicy
}

// Subscription is a handle on a registered continual query: its current
// result, its update stream, and its lifecycle.
type Subscription struct {
	db      *DB
	name    string
	initial *Rows
	updates chan Change
	cancel  func()
	policy  BackpressurePolicy
	buffer  int
	// dropped counts changes discarded because the Updates channel was
	// full (cq.notifications.dropped, shared with the manager's own
	// subscriber buffers).
	dropped *obs.Counter

	// mu guards the backpressure state below; onNotification runs on a
	// refresh worker while Resume/Disconnected run on consumer
	// goroutines.
	mu           sync.Mutex
	droppedSince int
	lastSeq      int
	disconnected bool
}

// Name returns the continual query's name.
func (s *Subscription) Name() string { return s.name }

// Initial returns the result of the query's initial execution.
func (s *Subscription) Initial() *Rows { return s.initial }

// Result returns a snapshot of the query's current complete result
// (maintained incrementally by the engine).
func (s *Subscription) Result() (*Rows, error) {
	rel, err := s.db.manager.Result(s.name)
	if err != nil {
		return nil, err
	}
	return fromRelation(rel), nil
}

// Updates streams one Change per refresh that produced a difference (or
// per refresh at all, with NotifyEmpty). The channel closes when the
// query is dropped, the engine closes, or the Disconnect policy fires.
func (s *Subscription) Updates() <-chan Change { return s.updates }

// Refresh forces a re-evaluation regardless of the trigger condition.
func (s *Subscription) Refresh() error { return s.db.manager.Refresh(s.name) }

// Drop unregisters the continual query.
func (s *Subscription) Drop() error { return s.db.manager.Drop(s.name) }

// Disconnected reports whether the Disconnect policy closed this
// subscription's Updates channel (the query itself is still running).
func (s *Subscription) Disconnected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disconnected
}

// Resume reattaches a subscription whose channel the Disconnect policy
// closed. It returns a fresh Subscription (same buffer and policy) plus
// a catch-up Change: the query's complete current result, with Dropped
// set to the number of refreshes missed while detached. The snapshot and
// the reattachment are atomic, so the new Updates stream continues
// gap-free from the catch-up point — the engine's differential catch-up
// applied to a slow consumer instead of a crashed one.
func (s *Subscription) Resume() (*Subscription, *Change, error) {
	s.mu.Lock()
	last := s.lastSeq
	pol, buf := s.policy, s.buffer
	s.mu.Unlock()
	ns := &Subscription{
		db:      s.db,
		name:    s.name,
		updates: make(chan Change, buf),
		policy:  pol,
		buffer:  buf,
		dropped: s.db.metrics.Counter("cq.notifications.dropped"),
	}
	cancel, catch, err := s.db.manager.ResubscribeFunc(
		cq.ResumeToken{CQ: s.name, Seq: last}, ns.onNotification)
	if err != nil {
		return nil, nil, err
	}
	ns.cancel = cancel
	ns.lastSeq = catch.Seq
	ns.initial = fromRelation(catch.Complete)
	change := toChange(catch)
	// The catch-up always carries the complete result, whatever the
	// query's notification mode: a resumed consumer rebases on state,
	// not on a differential it partially missed.
	change.Complete = rowsData(catch.Complete)
	return ns, &change, nil
}

// toChange converts an internal notification to the public Change shape.
func toChange(n cq.Notification) Change {
	change := Change{
		CQ:         n.CQName,
		Seq:        n.Seq,
		Terminated: n.Terminated,
		Dropped:    n.Dropped,
	}
	switch {
	case n.Inserted != nil:
		change.Columns = columnsOf(n.Inserted)
	case n.Deleted != nil:
		change.Columns = columnsOf(n.Deleted)
	case n.Complete != nil:
		change.Columns = columnsOf(n.Complete)
	}
	change.Inserted = rowsData(n.Inserted)
	change.Deleted = rowsData(n.Deleted)
	change.Modified = modifications(n.Modified)
	if n.Mode == sql.ModeComplete {
		change.Complete = rowsData(n.Complete)
	}
	return change
}

// onNotification converts an internal notification to the public Change
// type and enqueues it under the subscription's backpressure policy. It
// is invoked synchronously while the manager delivers a refresh, so when
// Poll returns the Change is already buffered (or accounted for as a
// drop). Sends never block.
func (s *Subscription) onNotification(n cq.Notification, closed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disconnected {
		return
	}
	if closed {
		s.disconnected = true
		close(s.updates)
		return
	}
	change := toChange(n)
	change.Dropped += s.droppedSince
	select {
	case s.updates <- change:
		s.droppedSince = 0
		s.lastSeq = n.Seq
		return
	default:
	}
	switch s.policy {
	case DropOldest:
		// Evict the oldest queued change; the gap surfaces in Dropped,
		// and the evictee's own Dropped folds in so the count survives
		// chained evictions. onNotification is the only sender (one
		// callback per CQ at a time), so the retry can lose only to a
		// concurrent receive, which also makes room (and means nothing
		// was dropped after all).
		select {
		case old := <-s.updates:
			s.dropped.Inc()
			change.Dropped += old.Dropped + 1
		default:
		}
		select {
		case s.updates <- change:
			s.droppedSince = 0
			s.lastSeq = n.Seq
		default:
			s.dropped.Inc()
			s.droppedSince = change.Dropped + 1
		}
	case Disconnect:
		s.dropped.Inc()
		s.disconnected = true
		close(s.updates)
		// Detach asynchronously: cancel takes the instance lock the
		// delivering refresh currently holds.
		go s.cancel()
	default: // DropNewest
		s.dropped.Inc()
		s.droppedSince++
	}
}

func columnsOf(rel *relation.Relation) []string {
	if rel == nil {
		return nil
	}
	out := make([]string, rel.Schema().Len())
	for i := range out {
		out[i] = rel.Schema().Col(i).Name
	}
	return out
}

// Subscribe attaches to an already-registered continual query by name.
// This is how subscribers reattach to a query resumed by OpenDurable,
// whose pre-restart Subscription handles did not survive; Initial holds
// the query's current (recovered) result.
func (db *DB) Subscribe(name string) (*Subscription, error) {
	return db.SubscribeWith(name, SubscribeOptions{})
}

// SubscribeWith attaches to an already-registered continual query with
// an explicit buffer size and backpressure policy.
func (db *DB) SubscribeWith(name string, opts SubscribeOptions) (*Subscription, error) {
	current, err := db.manager.Result(name)
	if err != nil {
		return nil, err
	}
	return db.subscribeWith(name, current, opts)
}

// subscribe wires a freshly registered CQ to a Subscription with
// synchronous delivery and the default policy.
func (db *DB) subscribe(name string, initial *relation.Relation) (*Subscription, error) {
	return db.subscribeWith(name, initial, SubscribeOptions{})
}

func (db *DB) subscribeWith(name string, initial *relation.Relation, opts SubscribeOptions) (*Subscription, error) {
	buf := opts.Buffer
	if buf <= 0 {
		buf = 64
	}
	if opts.Policy < DropNewest || opts.Policy > Disconnect {
		return nil, errors.New("continual: unknown backpressure policy")
	}
	sub := &Subscription{
		db:      db,
		name:    name,
		initial: fromRelation(initial),
		updates: make(chan Change, buf),
		policy:  opts.Policy,
		buffer:  buf,
		dropped: db.metrics.Counter("cq.notifications.dropped"),
	}
	cancel, err := db.manager.SubscribeFunc(name, sub.onNotification)
	if err != nil {
		return nil, err
	}
	sub.cancel = cancel
	return sub, nil
}
