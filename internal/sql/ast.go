package sql

import (
	"fmt"
	"strings"

	"github.com/diorama/continual/internal/relation"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed expression.
type Expr interface {
	expr()
	// String renders the expression back to SQL-ish text.
	String() string
}

// ColumnRef references a column, possibly qualified ("stocks.price").
type ColumnRef struct {
	Name string
}

func (*ColumnRef) expr() {}

// String implements Expr.
func (c *ColumnRef) String() string { return c.Name }

// Literal is a constant value.
type Literal struct {
	Value relation.Value
}

func (*Literal) expr() {}

// String implements Expr.
func (l *Literal) String() string {
	if l.Value.Kind == relation.TString && !l.Value.IsNull() {
		return "'" + strings.ReplaceAll(l.Value.AsString(), "'", "''") + "'"
	}
	if l.Value.IsNull() {
		return "NULL"
	}
	return l.Value.String()
}

// BinaryExpr is a binary operation. Op is one of
// = != < <= > >= + - * / % AND OR.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) expr() {}

// String implements Expr.
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// UnaryExpr is NOT e or -e.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	E  Expr
}

func (*UnaryExpr) expr() {}

// String implements Expr.
func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", u.E)
	}
	return fmt.Sprintf("(-%s)", u.E)
}

// FuncCall is an aggregate or scalar function call. Star marks COUNT(*).
type FuncCall struct {
	Name string // uppercase: SUM COUNT AVG MIN MAX ABS
	Arg  Expr   // nil for COUNT(*)
	Star bool
}

func (*FuncCall) expr() {}

// String implements Expr.
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	return fmt.Sprintf("%s(%s)", f.Name, f.Arg)
}

// AggregateFuncs names the supported aggregates.
var AggregateFuncs = map[string]bool{"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true}

// SelectItem is one projection target.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef is one FROM-clause operand. For explicit JOIN syntax, On holds
// the join predicate; comma-joins leave On nil (the predicate lives in
// WHERE).
type TableRef struct {
	Table string
	Alias string
	On    Expr
}

// Name returns the effective relation name (alias if present).
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed SELECT.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	// Into names the materialization target: a continual query declared
	// SELECT ... INTO t commits each refresh's result delta into the
	// derived base table t, so downstream queries can read it like any
	// other table. Empty for ordinary (terminal) queries.
	Into    string
	From    []TableRef
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	// Limit bounds the result size; negative means no limit.
	Limit int64
}

func (*SelectStmt) stmt() {}

// HasAggregates reports whether any projection item is an aggregate call.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Star {
			continue
		}
		if exprHasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func exprHasAggregate(e Expr) bool {
	switch ex := e.(type) {
	case *FuncCall:
		if AggregateFuncs[ex.Name] {
			return true
		}
		return ex.Arg != nil && exprHasAggregate(ex.Arg)
	case *BinaryExpr:
		return exprHasAggregate(ex.L) || exprHasAggregate(ex.R)
	case *UnaryExpr:
		return exprHasAggregate(ex.E)
	default:
		return false
	}
}

// InsertStmt is a parsed INSERT.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// UpdateStmt is a parsed UPDATE.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is a parsed DELETE.
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name string
	Type relation.Type
}

// CreateTableStmt is a parsed CREATE TABLE.
type CreateTableStmt struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// DropTableStmt is a parsed DROP TABLE.
type DropTableStmt struct {
	Table string
}

func (*DropTableStmt) stmt() {}

// TriggerKind classifies CQ trigger specifications (Section 3.1 lists the
// forms; Section 3.2 adds epsilon specifications).
type TriggerKind int

// Trigger kinds.
const (
	// TriggerEvery fires on a fixed period of logical ticks / wall
	// interval ("a direct specification of time").
	TriggerEvery TriggerKind = iota + 1
	// TriggerEpsilon fires when the accumulated change magnitude of the
	// monitored expression exceeds the bound (an E-spec, Section 3.2).
	TriggerEpsilon
	// TriggerUpdates fires after n relevant update rows.
	TriggerUpdates
)

// TriggerSpec is the parsed TRIGGER clause.
type TriggerSpec struct {
	Kind    TriggerKind
	Every   int64   // TriggerEvery: period
	Bound   float64 // TriggerEpsilon: epsilon bound
	On      Expr    // TriggerEpsilon: monitored numeric expression (column)
	Updates int64   // TriggerUpdates: row count
}

// ResultMode selects what a CQ delivers on each refresh (Section 4.3,
// step 4 enumerates the three assembly modes).
type ResultMode int

// Result modes.
const (
	ModeDifferential ResultMode = iota + 1
	ModeComplete
	ModeDeletions
)

// String names the mode.
func (m ResultMode) String() string {
	switch m {
	case ModeDifferential:
		return "DIFFERENTIAL"
	case ModeComplete:
		return "COMPLETE"
	case ModeDeletions:
		return "DELETIONS"
	default:
		return fmt.Sprintf("ResultMode(%d)", int(m))
	}
}

// StopSpec is the parsed STOP clause. Zero value = never stop.
type StopSpec struct {
	AfterN int64 // stop after N executions (0 = unbounded)
}

// CreateCQStmt is a parsed CREATE CONTINUAL QUERY statement — the triple
// (Q, Tcq, Stop) of Section 3.1 plus the result mode.
type CreateCQStmt struct {
	Name    string
	Select  *SelectStmt
	Trigger TriggerSpec
	Mode    ResultMode
	Stop    StopSpec
}

func (*CreateCQStmt) stmt() {}
