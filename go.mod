module github.com/diorama/continual

go 1.22
