package continual

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// execCreateTable handles CREATE TABLE.
func (db *DB) execCreateTable(stmt *sql.CreateTableStmt) error {
	cols := make([]relation.Column, len(stmt.Columns))
	for i, c := range stmt.Columns {
		cols[i] = relation.Column{Name: c.Name, Type: c.Type}
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return err
	}
	// Through the manager, not the store: DDL shares the CQ namespace
	// guards (a table may not shadow a registered continual query).
	return db.manager.CreateTable(stmt.Table, schema)
}

// emptyTuple is passed to constant-expression evaluation.
var emptyTuple = relation.Tuple{}

// execInsert handles INSERT INTO ... VALUES.
func (db *DB) execInsert(stmt *sql.InsertStmt) error {
	schema, err := db.store.Schema(stmt.Table)
	if err != nil {
		return err
	}
	tx := db.store.Begin()
	for _, row := range stmt.Rows {
		if len(row) != schema.Len() {
			tx.Abort()
			return fmt.Errorf("continual: INSERT row has %d values, table %q has %d columns",
				len(row), stmt.Table, schema.Len())
		}
		vals := make([]relation.Value, len(row))
		for i, e := range row {
			ce, err := algebra.Compile(e, schema)
			if err != nil {
				tx.Abort()
				return err
			}
			v, err := ce.Eval(emptyTuple)
			if err != nil {
				tx.Abort()
				return err
			}
			coerced, err := coerce(v, schema.Col(i).Type)
			if err != nil {
				tx.Abort()
				return fmt.Errorf("continual: column %q: %w", schema.Col(i).Name, err)
			}
			vals[i] = coerced
		}
		if _, err := tx.Insert(stmt.Table, vals); err != nil {
			tx.Abort()
			return err
		}
	}
	_, err = tx.Commit()
	return err
}

// coerce adapts numeric literals to the declared column type.
func coerce(v relation.Value, want relation.Type) (relation.Value, error) {
	if v.IsNull() {
		return relation.TypedNull(want), nil
	}
	if v.Kind == want {
		return v, nil
	}
	switch {
	case v.Kind == relation.TInt && want == relation.TFloat:
		return relation.Float(float64(v.AsInt())), nil
	case v.Kind == relation.TFloat && want == relation.TInt:
		f := v.AsFloat()
		if f == float64(int64(f)) {
			return relation.Int(int64(f)), nil
		}
		return relation.Value{}, fmt.Errorf("non-integral value %v for INT column", f)
	default:
		return relation.Value{}, fmt.Errorf("cannot store %s into %s column", v.Kind, want)
	}
}

// execUpdate handles UPDATE ... SET ... WHERE.
func (db *DB) execUpdate(stmt *sql.UpdateStmt) error {
	schema, err := db.store.Schema(stmt.Table)
	if err != nil {
		return err
	}
	var pred algebra.CompiledExpr
	if stmt.Where != nil {
		pred, err = algebra.Compile(stmt.Where, schema)
		if err != nil {
			return err
		}
	}
	type assign struct {
		col int
		ce  algebra.CompiledExpr
	}
	assigns := make([]assign, len(stmt.Set))
	for i, a := range stmt.Set {
		idx, ok := schema.ColIndex(a.Column)
		if !ok {
			return fmt.Errorf("continual: UPDATE: no column %q in %q", a.Column, stmt.Table)
		}
		ce, err := algebra.Compile(a.Value, schema)
		if err != nil {
			return err
		}
		assigns[i] = assign{col: idx, ce: ce}
	}

	snap, err := db.store.Snapshot(stmt.Table)
	if err != nil {
		return err
	}
	tx := db.store.Begin()
	for _, t := range snap.Tuples() {
		if pred != nil {
			ok, err := algebra.EvalPredicate(pred, t)
			if err != nil {
				tx.Abort()
				return err
			}
			if !ok {
				continue
			}
		}
		newVals := make([]relation.Value, len(t.Values))
		copy(newVals, t.Values)
		for _, a := range assigns {
			v, err := a.ce.Eval(t)
			if err != nil {
				tx.Abort()
				return err
			}
			coerced, err := coerce(v, schema.Col(a.col).Type)
			if err != nil {
				tx.Abort()
				return fmt.Errorf("continual: column %q: %w", schema.Col(a.col).Name, err)
			}
			newVals[a.col] = coerced
		}
		if err := tx.Update(stmt.Table, t.TID, newVals); err != nil {
			tx.Abort()
			return err
		}
	}
	_, err = tx.Commit()
	return err
}

// execDelete handles DELETE FROM ... WHERE.
func (db *DB) execDelete(stmt *sql.DeleteStmt) error {
	schema, err := db.store.Schema(stmt.Table)
	if err != nil {
		return err
	}
	var pred algebra.CompiledExpr
	if stmt.Where != nil {
		pred, err = algebra.Compile(stmt.Where, schema)
		if err != nil {
			return err
		}
	}
	snap, err := db.store.Snapshot(stmt.Table)
	if err != nil {
		return err
	}
	tx := db.store.Begin()
	for _, t := range snap.Tuples() {
		if pred != nil {
			ok, err := algebra.EvalPredicate(pred, t)
			if err != nil {
				tx.Abort()
				return err
			}
			if !ok {
				continue
			}
		}
		if err := tx.Delete(stmt.Table, t.TID); err != nil {
			tx.Abort()
			return err
		}
	}
	_, err = tx.Commit()
	return err
}
