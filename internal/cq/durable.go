package cq

import (
	"fmt"
	"sort"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/epsilon"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

// Journal receives registry mutations and delivered executions in
// write-ahead order: the manager calls each hook BEFORE the matching
// in-memory change or notification, and a hook error aborts the
// operation with the manager unchanged. This is what makes delivered
// notifications at-most-once across crashes — an execution the journal
// never saw was also never delivered, so after recovery its trigger
// simply re-fires and the refresh re-runs differentially.
type Journal interface {
	// CQRegistered records a new CQ (entry carries the initial result).
	CQRegistered(e wal.CQEntry) error
	// CQExecuted records one delivered refresh; change is the result
	// delta of the execution (may be nil or empty).
	CQExecuted(name string, seq int, ts vclock.Timestamp, change *delta.Delta, terminated bool) error
	// CQDropped records removal.
	CQDropped(name string) error
}

// entryLocked renders one instance to its durable form. Caller holds
// inst.mu.
func (m *Manager) entryLocked(inst *instance) wal.CQEntry {
	e := wal.CQEntry{
		Name:           inst.def.Name,
		Query:          inst.queryText,
		TriggerKind:    int(inst.trigger.Kind),
		TriggerEvery:   inst.trigger.Every,
		TriggerBound:   inst.trigger.Bound,
		TriggerUpdates: inst.trigger.Updates,
		Mode:           int(inst.mode),
		StopAfterN:     inst.stop.AfterN,
		EpsilonMeasure: int(inst.def.EpsilonMeasure),
		NotifyEmpty:    inst.def.NotifyEmpty,
		Seq:            inst.seq,
		LastExec:       inst.lastExec,
		Terminated:     inst.terminated.Load(),
		Health:         inst.breaker.State().String(),
	}
	if inst.trigger.On != nil {
		e.TriggerOn = inst.trigger.On.String()
	}
	if inst.prepared != nil {
		e.Strategy = inst.prepared.Strategy().String()
	}
	if g := inst.group; g != nil {
		g.mu.Lock()
		e.Strategy = g.prepared.Strategy().String()
		g.mu.Unlock()
	}
	if inst.prev != nil {
		e.Result = inst.prev.Clone()
	}
	return e
}

// SnapshotRegistry captures every registered CQ's durable entry at one
// consistent point: it locks the manager and every instance (in sorted
// name order, so concurrent snapshots cannot deadlock), runs cut while
// everything is pinned — the caller snapshots the store and rotates the
// WAL there — and renders the entries. The combination gives the
// checkpoint a cut where store state, CQ bookkeeping and log position
// all agree.
func (m *Manager) SnapshotRegistry(cut func() error) ([]wal.CQEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	names := make([]string, 0, len(m.cqs))
	for n := range m.cqs {
		names = append(names, n)
	}
	sort.Strings(names)
	locked := make([]*instance, 0, len(names))
	defer func() {
		for _, inst := range locked {
			inst.mu.Unlock()
		}
	}()
	for _, n := range names {
		inst := m.cqs[n]
		inst.mu.Lock()
		locked = append(locked, inst)
	}
	if cut != nil {
		if err := cut(); err != nil {
			return nil, err
		}
	}
	entries := make([]wal.CQEntry, 0, len(locked))
	for _, inst := range locked {
		entries = append(entries, m.entryLocked(inst))
	}
	return entries, nil
}

// Resume reinstalls a recovered CQ without journaling and without a
// fresh initial execution: the entry's Seq/LastExec/Result carry on the
// result sequence exactly where the previous incarnation stopped, and
// the trigger starts observing at LastExec — so the first Poll after
// recovery computes a differential catch-up over the replayed delta
// window, the DRA applied to the crash itself.
func (m *Manager) Resume(e wal.CQEntry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, dup := m.cqs[e.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateCQ, e.Name)
	}
	stmt, err := sql.ParseSelect(e.Query)
	if err != nil {
		return fmt.Errorf("cq %q: recovered query: %w", e.Name, err)
	}
	def := Def{
		Name:  e.Name,
		Query: e.Query,
		Trigger: sql.TriggerSpec{
			Kind:    sql.TriggerKind(e.TriggerKind),
			Every:   e.TriggerEvery,
			Bound:   e.TriggerBound,
			Updates: e.TriggerUpdates,
		},
		Mode:           sql.ResultMode(e.Mode),
		Stop:           sql.StopSpec{AfterN: e.StopAfterN},
		EpsilonMeasure: epsilon.Measure(e.EpsilonMeasure),
		NotifyEmpty:    e.NotifyEmpty,
	}
	if e.TriggerOn != "" {
		on, err := sql.ParseExpr(e.TriggerOn)
		if err != nil {
			return fmt.Errorf("cq %q: recovered trigger expression: %w", e.Name, err)
		}
		def.Trigger.On = on
	}

	plan, err := algebra.PlanSelect(stmt, m.store.Live())
	if err != nil {
		return fmt.Errorf("cq %q: recovered plan: %w", e.Name, err)
	}
	plan = algebra.Optimize(plan)

	inst := &instance{
		def:       def,
		plan:      plan,
		mode:      def.Mode,
		trigger:   def.Trigger,
		stop:      def.Stop,
		queryText: stmt.String(),
		breaker:   m.newBreaker(),
	}
	// A CQ that was quarantined (or probing) when the checkpoint cut
	// resumes in probation, not healthy: recovery clears transient
	// state, so one immediate probe is allowed, but its failure streak
	// is not forgotten — a persistently failing CQ does not get a free
	// quarantine escape via restart.
	if guard.ParseHealth(e.Health) != guard.Healthy {
		inst.breaker.SeedProbation()
	}
	for _, scan := range algebra.Tables(plan) {
		inst.tables = append(inst.tables, scan.Table)
	}
	// Rebuild the cascade DAG edges. Checkpoint recovery resumes entries
	// in snapshot order, which need not be registration order — a reader
	// can rejoin the DAG before its upstream's producer does. That is
	// fine: the registry recomputes every node's stage retroactively
	// when a producer registers, so the staged poll converges to the
	// pre-crash topology no matter the resume order.
	if _, err := m.dag.Register(e.Name, inst.tables, stmt.Into); err != nil {
		return fmt.Errorf("cq %q: recovered cascade edges: %w", e.Name, err)
	}
	inst.into = stmt.Into
	installed := false
	defer func() {
		if !installed {
			m.dag.Unregister(e.Name)
		}
	}()
	if stmt.Into != "" {
		// The WAL replay normally recreated the target; a lost table
		// (defensive path) is recreated empty and reseeded by the
		// reconcile below. Either way the crash may sit between the last
		// materialize commit and its execution record, so the first
		// refresh reconciles the whole target instead of trusting its
		// delta (materialize.go).
		if _, serr := m.store.Schema(stmt.Into); serr != nil {
			if cerr := m.store.CreateTable(stmt.Into, plan.Schema()); cerr != nil {
				return fmt.Errorf("cq %q: recreate target %q: %w", e.Name, stmt.Into, cerr)
			}
		}
		inst.needsReconcile = true
	}
	if def.Trigger.Kind == sql.TriggerEpsilon {
		// Accountants restart empty: their divergence re-accumulates
		// differentially from the replayed window as lastObs advances.
		if err := m.setupEpsilon(inst, stmt); err != nil {
			return fmt.Errorf("cq %q: recovered epsilon trigger: %w", e.Name, err)
		}
	}
	inst.terminated.Store(e.Terminated)

	if m.cfg.UseDRA && !e.Terminated {
		// State keepers reseed AT THE LAST EXECUTION, not at the live
		// head: the next refresh must see the post-crash window as its
		// delta, or replayed-but-unprocessed commits would be skipped.
		// At(LastExec) is always reconstructible for a live CQ because
		// the GC horizon never passes the minimum live lastExec.
		maint, err := newMaintainer(m.cfg, plan, m.store.At(e.LastExec))
		if err != nil {
			return fmt.Errorf("cq %q: reseed maintainer: %w", e.Name, err)
		}
		if maint != nil {
			inst.maint = maint
			if e.Result == nil {
				e.Result = maint.Result().Clone()
			}
		} else {
			// Template sharing round-trips recovery: a shareable member
			// rejoins (or recreates) its group and is flagged
			// pendingSync — its first refresh is a private differential
			// catch-up from LastExec, after which it consumes the
			// template stream like any other member. Materializing CQs
			// never share (as at registration).
			var joined bool
			if stmt.Into == "" {
				var jerr error
				_, joined, jerr = m.joinTemplateLocked(inst, true)
				if jerr != nil {
					return fmt.Errorf("cq %q: rejoin template: %w", e.Name, jerr)
				}
			}
			if !joined {
				// Re-prepare with the recovered strategy, with the same
				// audible fallback as registration.
				strat := dra.StrategyAuto
				if e.Strategy != "" {
					s, perr := dra.ParseStrategy(e.Strategy)
					if perr != nil {
						m.logf("cq %q: recovered strategy %q unknown; using auto", e.Name, e.Strategy)
					} else {
						strat = s
					}
				}
				prep, err := m.prepare(e.Name, plan, strat)
				if err != nil {
					return fmt.Errorf("cq %q: re-prepare: %w", e.Name, err)
				}
				inst.prepared = prep
			}
		}
	}

	switch {
	case e.Result != nil:
		inst.prev = e.Result.Clone()
	case !e.Terminated:
		// No materialized result survived (a fold error during recovery
		// dropped it): reseed by evaluation at the last execution.
		res, err := dra.InitialResult(plan, m.store.At(e.LastExec))
		if err != nil {
			return fmt.Errorf("cq %q: reseed result: %w", e.Name, err)
		}
		inst.prev = res
	default:
		// Terminated and no result: the sequence is over; an empty
		// relation keeps State/Result well defined.
		inst.prev = relation.New(plan.Schema())
	}

	inst.seq = e.Seq
	inst.lastExec = e.LastExec
	inst.lastObs = e.LastExec
	m.cqs[e.Name] = inst
	m.routePushLocked(inst)
	m.registeredDeltaLocked(inst, +1)
	installed = true
	return nil
}
