package dra

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// Propagate is the paper's reference operator (Section 4.2): it expresses
// how the result of Q changes when operand relations change, by complete
// re-evaluation — run Q over the pre-update state and over the
// post-update state, and Diff the two result relations. The DRA is proven
// functionally equivalent to this operator; the property tests in this
// package exercise that equivalence over randomized histories.
func Propagate(plan algebra.Plan, pre, post algebra.Source, ts vclock.Timestamp) (*delta.Delta, error) {
	oldR, err := algebra.NewExecutor(pre).Execute(plan)
	if err != nil {
		return nil, fmt.Errorf("dra: propagate pre: %w", err)
	}
	newR, err := algebra.NewExecutor(post).Execute(plan)
	if err != nil {
		return nil, fmt.Errorf("dra: propagate post: %w", err)
	}
	return delta.Diff(oldR, newR, ts)
}

// PropagateSigned is Propagate in signed-multiset form.
func PropagateSigned(plan algebra.Plan, pre, post algebra.Source) (*delta.Signed, error) {
	d, err := Propagate(plan, pre, post, 0)
	if err != nil {
		return nil, err
	}
	return &delta.Signed{Schema: plan.Schema(), Rows: d.ToSigned().Rows}, nil
}

// FullReevaluate is the complete re-evaluation baseline used by the
// benchmark harness: it executes the plan against the current state and
// derives the change by diffing with the previous result.
func FullReevaluate(plan algebra.Plan, post algebra.Source, prev *relation.Relation, execTS vclock.Timestamp) (*Result, error) {
	if prev == nil {
		return nil, ErrNoPrev
	}
	cur, err := algebra.NewExecutor(post).Execute(plan)
	if err != nil {
		return nil, fmt.Errorf("dra: full re-evaluation: %w", err)
	}
	d, err := delta.Diff(prev, cur, execTS)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Signed: &delta.Signed{Schema: plan.Schema(), Rows: d.ToSigned().Rows},
		Delta:  d,
		ExecTS: execTS,
	}
	res.materialized = cur
	return res, nil
}

// InitialResult runs the query from scratch (the "initial execution" of
// the CQ, which Algorithm 1 assumes has happened).
func InitialResult(plan algebra.Plan, src algebra.Source) (*relation.Relation, error) {
	return algebra.NewExecutor(src).Execute(plan)
}
