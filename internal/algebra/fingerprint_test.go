package algebra

import (
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

func planFor(t *testing.T, src catSource, query string) Plan {
	t.Helper()
	stmt, err := sql.ParseSelect(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	p, err := PlanSelect(stmt, src)
	if err != nil {
		t.Fatalf("plan %q: %v", query, err)
	}
	return Optimize(p)
}

// The fingerprint must be a pure function of the logical plan: the same
// query text planned twice hashes identically.
func TestFingerprintStable(t *testing.T) {
	src := stocksSource(t)
	queries := []string{
		"SELECT * FROM stocks WHERE price > 100",
		"SELECT name FROM stocks WHERE price > 100 AND name != 'IBM'",
		"SELECT s.name, t.volume FROM stocks s JOIN trades t ON s.name = t.sym",
		"SELECT name, COUNT(*) AS n FROM stocks GROUP BY name",
	}
	for _, q := range queries {
		a := PlanFingerprint(planFor(t, src, q))
		b := PlanFingerprint(planFor(t, src, q))
		if a != b {
			t.Errorf("fingerprint of %q not stable: %#x vs %#x", q, a, b)
		}
	}
	// And distinct queries hash apart.
	seen := map[uint64]string{}
	for _, q := range queries {
		fp := PlanFingerprint(planFor(t, src, q))
		if prev, dup := seen[fp]; dup {
			t.Errorf("collision between %q and %q", prev, q)
		}
		seen[fp] = q
	}
}

// A table literally named "a AS b" must not collide with table "a"
// aliased "b" — the old String()-based hash rendered both as
// "Scan(a AS b)".
func TestFingerprintScanAliasAmbiguity(t *testing.T) {
	schema := relation.MustSchema(relation.Column{Name: "x", Type: relation.TInt})
	weird := NewScanPlan("a AS b", "a AS b", schema)
	aliased := NewScanPlan("a", "b", schema)
	if PlanFingerprint(weird) == PlanFingerprint(aliased) {
		t.Fatal("Scan table \"a AS b\" collides with Scan(a AS b alias)")
	}
}

// A column whose NAME is the rendering of a comparison must not collide
// with the comparison itself in a predicate stream.
func TestFingerprintOperatorVsColumnName(t *testing.T) {
	boolCol := relation.MustSchema(
		relation.Column{Name: "x > 1", Type: relation.TBool},
		relation.Column{Name: "x", Type: relation.TInt},
	)
	intCols := relation.MustSchema(
		relation.Column{Name: "x > 1", Type: relation.TBool},
		relation.Column{Name: "x", Type: relation.TInt},
	)
	scanA := NewScanPlan("t", "t", boolCol)
	scanB := NewScanPlan("t", "t", intCols)
	// Predicate A references the weird column by name; predicate B is
	// the comparison x > 1. Their String() renderings can coincide
	// (modulo parens the parser adds), but the streams must differ.
	pa := &SelectPlan{Input: scanA, Pred: &sql.ColumnRef{Name: "(x > 1)"}}
	pb := &SelectPlan{Input: scanB, Pred: &sql.BinaryExpr{
		Op: ">", L: &sql.ColumnRef{Name: "x"}, R: &sql.Literal{Value: relation.Int(1)},
	}}
	if PlanFingerprint(pa) == PlanFingerprint(pb) {
		t.Fatal("column named \"(x > 1)\" collides with comparison x > 1")
	}
}

// Schema encoding must length-prefix column names so name bytes cannot
// bleed into a neighbor's name or type byte.
func TestFingerprintSchemaBoundary(t *testing.T) {
	a := NewScanPlan("t", "t", relation.MustSchema(
		relation.Column{Name: "ab", Type: relation.TInt},
		relation.Column{Name: "c", Type: relation.TInt},
	))
	b := NewScanPlan("t", "t", relation.MustSchema(
		relation.Column{Name: "a", Type: relation.TInt},
		relation.Column{Name: "bc", Type: relation.TInt},
	))
	if PlanFingerprint(a) == PlanFingerprint(b) {
		t.Fatal("schema column boundaries collide: [ab,c] vs [a,bc]")
	}
}

// Literals carry their kind: Int(5), Float(5) and Str("5") are three
// different constants even though two compare equal numerically.
func TestFingerprintLiteralKinds(t *testing.T) {
	schema := relation.MustSchema(relation.Column{Name: "price", Type: relation.TFloat})
	mk := func(v relation.Value) Plan {
		return &SelectPlan{
			Input: NewScanPlan("t", "t", schema),
			Pred: &sql.BinaryExpr{
				Op: ">", L: &sql.ColumnRef{Name: "price"}, R: &sql.Literal{Value: v},
			},
		}
	}
	fps := map[uint64]string{}
	for name, v := range map[string]relation.Value{
		"int":  relation.Int(5),
		"flt":  relation.Float(5),
		"str":  relation.Str("5"),
		"null": relation.TypedNull(relation.TInt),
	} {
		fp := PlanFingerprint(mk(v))
		if prev, dup := fps[fp]; dup {
			t.Errorf("literal kinds %s and %s collide", prev, name)
		}
		fps[fp] = name
	}
}

// Join operand order is part of the plan: Join(a,b) and Join(b,a) are
// different plans (their output schemas differ), and even with
// identical column layouts the fingerprint keeps sides apart.
func TestFingerprintJoinOrder(t *testing.T) {
	sa := relation.MustSchema(relation.Column{Name: "a.x", Type: relation.TInt})
	sb := relation.MustSchema(relation.Column{Name: "b.x", Type: relation.TInt})
	left := NewScanPlan("a", "a", sa)
	right := NewScanPlan("b", "b", sb)
	j1, err := NewJoinPlan(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := NewJoinPlan(right, left, nil)
	if err != nil {
		t.Fatal(err)
	}
	if PlanFingerprint(j1) == PlanFingerprint(j2) {
		t.Fatal("join operand order does not affect fingerprint")
	}
}

// Unary vs binary framing: NOT(a) AND b must not collide with
// NOT(a AND b) even though a naive infix rendering could parenthesize
// them identically under adversarial column names.
func TestFingerprintUnaryFraming(t *testing.T) {
	schema := relation.MustSchema(
		relation.Column{Name: "a", Type: relation.TBool},
		relation.Column{Name: "b", Type: relation.TBool},
	)
	scan := NewScanPlan("t", "t", schema)
	aRef := &sql.ColumnRef{Name: "a"}
	bRef := &sql.ColumnRef{Name: "b"}
	p1 := &SelectPlan{Input: scan, Pred: &sql.BinaryExpr{
		Op: "AND", L: &sql.UnaryExpr{Op: "NOT", E: aRef}, R: bRef,
	}}
	p2 := &SelectPlan{Input: scan, Pred: &sql.UnaryExpr{
		Op: "NOT", E: &sql.BinaryExpr{Op: "AND", L: aRef, R: bRef},
	}}
	if PlanFingerprint(p1) == PlanFingerprint(p2) {
		t.Fatal("NOT framing ambiguity in fingerprint stream")
	}
}
