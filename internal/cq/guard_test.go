package cq

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/guard"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

// faultMaint is an injectable maintainer that misbehaves on Step:
// panics, errors, or sleeps past the refresh budget. Fields are set
// before injection and never mutated, so an abandoned (late) Step may
// read them concurrently with the test goroutine.
type faultMaint struct {
	panics bool
	err    error
	sleep  time.Duration
}

func (f *faultMaint) Step(ctx *dra.Context, execTS vclock.Timestamp) (*dra.Result, error) {
	if f.sleep > 0 {
		time.Sleep(f.sleep)
	}
	if f.panics {
		panic("injected refresh panic")
	}
	if f.err != nil {
		return nil, f.err
	}
	return nil, errors.New("faultMaint: no failure configured")
}

func (f *faultMaint) Result() *relation.Relation { return nil }

func getInst(t *testing.T, m *Manager, name string) *instance {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	inst := m.cqs[name]
	if inst == nil {
		t.Fatalf("no instance %q", name)
	}
	return inst
}

// injectMaint swaps the instance's maintainer; a nil maint restores the
// registration-time refresh path (prepared pipeline or Reevaluate).
func injectMaint(t *testing.T, m *Manager, name string, f maintainer) {
	t.Helper()
	inst := getInst(t, m, name)
	inst.mu.Lock()
	inst.maint = f
	inst.mu.Unlock()
}

func updatesTrigger() sql.TriggerSpec {
	return sql.TriggerSpec{Kind: sql.TriggerUpdates, Updates: 1}
}

// renderNote is a canonical textual form of a notification for
// transcript comparison; row order is sorted so it is insensitive to
// relation iteration order.
func renderNote(n Notification) string {
	rows := func(r *relation.Relation) string {
		if r == nil {
			return "-"
		}
		var vs []string
		for _, tu := range r.Tuples() {
			vs = append(vs, fmt.Sprintf("%v", tu.Values))
		}
		sort.Strings(vs)
		return strings.Join(vs, ",")
	}
	return fmt.Sprintf("seq=%d ts=%d init=%v term=%v dropped=%d ins=[%s] del=[%s] full=[%s]",
		n.Seq, n.ExecTS, n.Initial, n.Terminated, n.Dropped,
		rows(n.Inserted), rows(n.Deleted), rows(n.Complete))
}

// chaosRun drives a fixed workload against three healthy CQs and, when
// withFaults is set, a panicking and an erroring CQ alongside. It
// returns the healthy CQs' full notification transcripts.
func chaosRun(t *testing.T, withFaults bool) map[string][]string {
	t.Helper()
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{
		UseDRA: true, AutoGC: true, Parallelism: 4,
		Metrics: obs.NewRegistry(),
		Guard:   guard.Policy{FailureThreshold: 3, BackoffBase: time.Hour},
	})
	defer func() { _ = m.Close() }()

	healthy := map[string]string{
		"hi":  "SELECT * FROM stocks WHERE price > 100",
		"lo":  "SELECT * FROM stocks WHERE price < 50",
		"mid": "SELECT name FROM stocks WHERE price >= 50 AND price <= 100",
	}
	transcripts := make(map[string][]string)
	var tmu sync.Mutex
	for name, q := range healthy {
		if _, err := m.Register(Def{Name: name, Query: q, Trigger: updatesTrigger()}); err != nil {
			t.Fatal(err)
		}
		name := name
		if _, err := m.SubscribeFunc(name, func(n Notification, closed bool) {
			if closed {
				return
			}
			tmu.Lock()
			transcripts[name] = append(transcripts[name], renderNote(n))
			tmu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	if withFaults {
		for name, f := range map[string]*faultMaint{
			"boom": {panics: true},
			"sick": {err: errors.New("injected refresh error")},
		} {
			if _, err := m.Register(Def{
				Name: name, Query: "SELECT * FROM stocks WHERE price > 0",
				Trigger: updatesTrigger(),
			}); err != nil {
				t.Fatal(err)
			}
			injectMaint(t, m, name, f)
		}
	}

	sawError := false
	for i := 0; i < 30; i++ {
		insertStock(t, s, fmt.Sprintf("S%02d", i), float64((i*37)%150))
		if _, err := m.Poll(); err != nil {
			sawError = true
			if !withFaults {
				t.Fatalf("fault-free poll %d: %v", i, err)
			}
		}
	}
	if withFaults {
		if !sawError {
			t.Fatal("fault run never surfaced a refresh error")
		}
		for _, name := range []string{"boom", "sick"} {
			st, err := m.State(name)
			if err != nil {
				t.Fatal(err)
			}
			if st.Health != "quarantined" {
				t.Errorf("%s health = %q, want quarantined", name, st.Health)
			}
			if st.LastErr == nil {
				t.Errorf("%s has no LastErr", name)
			}
		}
		var pe *guard.PanicError
		st, _ := m.State("boom")
		if !errors.As(st.LastErr, &pe) {
			t.Errorf("boom LastErr = %v, want PanicError", st.LastErr)
		}
		snap := m.Stats()
		if snap.Counters["cq.refresh.panics"] == 0 {
			t.Error("cq.refresh.panics not counted")
		}
		if snap.Counters["cq.quarantines"] < 2 {
			t.Errorf("cq.quarantines = %d, want >= 2", snap.Counters["cq.quarantines"])
		}
	}
	return transcripts
}

// TestChaosFaultIsolation is the E19 acceptance property at unit scale:
// healthy CQs' notification transcripts are byte-identical whether or
// not faulty CQs (panicking, erroring) run alongside them, and the run
// leaks no goroutines.
func TestChaosFaultIsolation(t *testing.T) {
	before := runtime.NumGoroutine()
	clean := chaosRun(t, false)
	faulty := chaosRun(t, true)
	for name, want := range clean {
		got := faulty[name]
		if len(got) != len(want) {
			t.Fatalf("%s: %d notifications with faults, %d without\nwith:    %v\nwithout: %v",
				name, len(got), len(want), got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s[%d]:\n with faults: %s\n fault-free:  %s", name, i, got[i], want[i])
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after", before, n)
	}
}

// TestQuarantineLifecycle walks the full breaker state machine:
// healthy -> (consecutive failures) -> quarantined (polls skip it) ->
// (backoff elapses, fault removed) -> probe succeeds -> healthy again,
// with the probe's notification covering the whole missed window
// differentially and Seq staying gap-free.
func TestQuarantineLifecycle(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	now := time.Unix(1000, 0)
	var nowMu sync.Mutex
	clock := func() time.Time { nowMu.Lock(); defer nowMu.Unlock(); return now }
	advance := func(d time.Duration) { nowMu.Lock(); now = now.Add(d); nowMu.Unlock() }

	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{
		UseDRA: true, AutoGC: true, Parallelism: 1, Metrics: reg,
		Guard: guard.Policy{FailureThreshold: 2, BackoffBase: time.Second, BackoffMax: time.Minute, Now: clock},
	})
	defer func() { _ = m.Close() }()

	if _, err := m.Register(Def{
		Name: "bad", Query: "SELECT * FROM stocks WHERE price > 100",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	injectMaint(t, m, "bad", &faultMaint{err: errors.New("injected")})

	// Two failing polls trip the threshold-2 breaker.
	insertStock(t, s, "F1", 150)
	if _, err := m.Poll(); err == nil {
		t.Fatal("first failing poll returned nil error")
	}
	st, _ := m.State("bad")
	if st.Health != "healthy" || st.Failures != 1 {
		t.Fatalf("after 1 failure: health=%q failures=%d", st.Health, st.Failures)
	}
	insertStock(t, s, "F2", 160)
	if _, err := m.Poll(); err == nil {
		t.Fatal("second failing poll returned nil error")
	}
	st, _ = m.State("bad")
	if st.Health != "quarantined" || st.Failures != 2 {
		t.Fatalf("after 2 failures: health=%q failures=%d", st.Health, st.Failures)
	}

	// While quarantined (backoff not served), polls skip the CQ: no
	// refresh attempt, no new error, skip counter advances.
	skipsBefore := m.Stats().Counters["cq.quarantine.skips"]
	insertStock(t, s, "F3", 170)
	if _, err := m.Poll(); err != nil {
		t.Fatalf("poll over quarantined CQ errored: %v", err)
	}
	if skips := m.Stats().Counters["cq.quarantine.skips"]; skips != skipsBefore+1 {
		t.Errorf("quarantine skips = %d, want %d", skips, skipsBefore+1)
	}
	st, _ = m.State("bad")
	if st.Seq != 1 {
		t.Fatalf("quarantined CQ refreshed: seq=%d", st.Seq)
	}

	// Heal the fault, serve the backoff, and let the probe through. The
	// single probe must catch up differentially: one notification, one
	// Seq increment, covering every row missed during quarantine.
	injectMaint(t, m, "bad", nil)
	advance(10 * time.Second)
	sub, err := m.SubscribeOpts("bad", SubOptions{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	insertStock(t, s, "F4", 180)
	if _, err := m.Poll(); err != nil {
		t.Fatalf("probe poll: %v", err)
	}
	st, _ = m.State("bad")
	if st.Health != "healthy" || st.Failures != 0 || st.LastErr != nil {
		t.Fatalf("after probe: %+v", st)
	}
	if st.Seq != 2 {
		t.Fatalf("probe seq = %d, want 2 (gap-free)", st.Seq)
	}
	notes := drain(sub.Ch())
	if len(notes) != 1 {
		t.Fatalf("probe notifications = %d", len(notes))
	}
	if notes[0].Inserted.Len() != 4 {
		t.Errorf("catch-up covered %d rows, want 4 (F1-F4)", notes[0].Inserted.Len())
	}
}

// TestManualRefreshProbesQuarantined: an operator Refresh bypasses the
// backoff gate — it is the manual probe — and a success heals the CQ
// immediately.
func TestManualRefreshProbesQuarantined(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{
		UseDRA: true, AutoGC: true,
		Guard: guard.Policy{FailureThreshold: 1, BackoffBase: time.Hour},
	})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "bad", Query: "SELECT * FROM stocks WHERE price > 100",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	injectMaint(t, m, "bad", &faultMaint{err: errors.New("injected")})
	insertStock(t, s, "A", 150)
	if _, err := m.Poll(); err == nil {
		t.Fatal("failing poll returned nil")
	}
	if st, _ := m.State("bad"); st.Health != "quarantined" {
		t.Fatalf("health = %q", st.Health)
	}
	// Backoff is an hour out, but the operator probe goes through.
	injectMaint(t, m, "bad", nil)
	if err := m.Refresh("bad"); err != nil {
		t.Fatalf("manual refresh: %v", err)
	}
	st, _ := m.State("bad")
	if st.Health != "healthy" || st.Seq != 2 {
		t.Fatalf("after manual probe: %+v", st)
	}
}

// TestBudgetTimeout: a refresh that overruns its budget is abandoned
// (the poll returns promptly), the verdict surfaces as ErrBudgetExceeded
// in CQState.LastErr, and the late completion is counted when the
// abandoned goroutine finally finishes.
func TestBudgetTimeout(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{
		UseDRA: true, AutoGC: true, Metrics: reg,
		Guard: guard.Policy{Budget: 25 * time.Millisecond, FailureThreshold: -1},
	})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "slow", Query: "SELECT * FROM stocks WHERE price > 0",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	injectMaint(t, m, "slow", &faultMaint{sleep: 150 * time.Millisecond, err: errors.New("late anyway")})

	insertStock(t, s, "A", 10)
	start := time.Now()
	_, err := m.Poll()
	if err == nil || !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("poll error = %v, want ErrBudgetExceeded", err)
	}
	if took := time.Since(start); took > 120*time.Millisecond {
		t.Errorf("poll blocked %v on an abandoned refresh", took)
	}
	st, _ := m.State("slow")
	if !errors.Is(st.LastErr, guard.ErrBudgetExceeded) {
		t.Errorf("LastErr = %v, want ErrBudgetExceeded", st.LastErr)
	}
	if n := m.Stats().Counters["cq.refresh.timeouts"]; n != 1 {
		t.Errorf("cq.refresh.timeouts = %d", n)
	}
	// The late completion is observed by the reaper once the sleep ends.
	deadline := time.Now().Add(2 * time.Second)
	for m.Stats().Counters["cq.refresh.late"] == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := m.Stats().Counters["cq.refresh.late"]; n != 1 {
		t.Errorf("cq.refresh.late = %d", n)
	}
}

// TestHealthCounts: Manager.Health aggregates per-CQ breaker states and
// names the degraded queries.
func TestHealthCounts(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{
		UseDRA: true, AutoGC: true, Metrics: obs.NewRegistry(),
		Guard: guard.Policy{FailureThreshold: 1, BackoffBase: time.Hour},
	})
	defer func() { _ = m.Close() }()
	for _, def := range []Def{
		{Name: "good", Query: "SELECT * FROM stocks WHERE price > 100", Trigger: updatesTrigger()},
		{Name: "bad", Query: "SELECT * FROM stocks WHERE price > 0", Trigger: updatesTrigger()},
	} {
		if _, err := m.Register(def); err != nil {
			t.Fatal(err)
		}
	}
	injectMaint(t, m, "bad", &faultMaint{err: errors.New("injected")})
	insertStock(t, s, "A", 150)
	_, _ = m.Poll()

	h := m.Health()
	if h.Healthy != 1 || h.Quarantined != 1 || h.Probation != 0 {
		t.Fatalf("health = %+v", h)
	}
	if len(h.Degraded) != 1 || h.Degraded[0] != "bad" {
		t.Fatalf("degraded = %v", h.Degraded)
	}
	snap := m.Stats()
	if snap.Gauges["cq.health.healthy"] != 1 || snap.Gauges["cq.health.quarantined"] != 1 {
		t.Errorf("health gauges = healthy:%d quarantined:%d",
			snap.Gauges["cq.health.healthy"], snap.Gauges["cq.health.quarantined"])
	}
}

// refreshOnce inserts a row and polls, failing the test on error.
func refreshOnce(t *testing.T, s *storage.Store, m *Manager, name string, price float64) {
	t.Helper()
	insertStock(t, s, name, price)
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
}

func TestBackpressureDropNewest(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "q", Query: "SELECT * FROM stocks WHERE price > 0",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.SubscribeOpts("q", SubOptions{Buffer: 1, Policy: DropNewest})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	refreshOnce(t, s, m, "A", 10) // fills the buffer (seq 2)
	refreshOnce(t, s, m, "B", 20) // dropped
	refreshOnce(t, s, m, "C", 30) // dropped

	n1 := <-sub.Ch()
	if n1.Seq != 2 || n1.Dropped != 0 {
		t.Fatalf("first delivery = %+v", n1)
	}
	refreshOnce(t, s, m, "D", 40) // buffer free again
	n2 := <-sub.Ch()
	if n2.Seq != 5 || n2.Dropped != 2 {
		t.Fatalf("post-gap delivery seq=%d dropped=%d, want seq=5 dropped=2", n2.Seq, n2.Dropped)
	}
	st, _ := m.State("q")
	if st.NotifsDropped != 2 {
		t.Errorf("CQState.NotifsDropped = %d, want 2", st.NotifsDropped)
	}
}

func TestBackpressureDropOldest(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "q", Query: "SELECT * FROM stocks WHERE price > 0",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.SubscribeOpts("q", SubOptions{Buffer: 1, Policy: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	refreshOnce(t, s, m, "A", 10) // seq 2 queued
	refreshOnce(t, s, m, "B", 20) // evicts seq 2, queues seq 3 with gap

	n := <-sub.Ch()
	if n.Seq != 3 || n.Dropped != 1 {
		t.Fatalf("delivery seq=%d dropped=%d, want freshest seq=3 with dropped=1", n.Seq, n.Dropped)
	}
	select {
	case extra := <-sub.Ch():
		t.Fatalf("unexpected extra notification %+v", extra)
	default:
	}
}

// Chained evictions must not lose the evictee's own Dropped count: the
// gap accumulates, so delivered + Dropped always equals notifications
// sent.
func TestBackpressureDropOldestAccumulatesGap(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManager(s)
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "q", Query: "SELECT * FROM stocks WHERE price > 0",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.SubscribeOpts("q", SubOptions{Buffer: 1, Policy: DropOldest})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()

	// Five refreshes against a full buffer: seq 2 queues, 3-5 each
	// evict their predecessor, seq 6 must carry the whole gap.
	for i, price := range []float64{10, 20, 30, 40, 50} {
		refreshOnce(t, s, m, fmt.Sprintf("S%d", i), price)
	}
	n := <-sub.Ch()
	if n.Seq != 6 || n.Dropped != 4 {
		t.Fatalf("delivery seq=%d dropped=%d, want seq=6 with dropped=4", n.Seq, n.Dropped)
	}
	if st, err := m.State("q"); err != nil || st.NotifsDropped != 4 {
		t.Fatalf("NotifsDropped=%d err=%v, want 4", st.NotifsDropped, err)
	}
}

func TestBackpressureDisconnectAndResume(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Metrics: reg})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "q", Query: "SELECT * FROM stocks WHERE price > 0",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.SubscribeOpts("q", SubOptions{Buffer: 1, Policy: Disconnect})
	if err != nil {
		t.Fatal(err)
	}

	refreshOnce(t, s, m, "A", 10) // seq 2: delivered into the buffer
	refreshOnce(t, s, m, "B", 20) // seq 3: full buffer -> disconnect

	n1, ok := <-sub.Ch()
	if !ok || n1.Seq != 2 {
		t.Fatalf("queued delivery = %+v ok=%v", n1, ok)
	}
	if _, ok := <-sub.Ch(); ok {
		t.Fatal("channel not closed after disconnect")
	}
	if !sub.Disconnected() {
		t.Fatal("Disconnected() = false")
	}
	if got := reg.Snapshot().Counters["cq.subscriber_disconnects"]; got != 1 {
		t.Errorf("cq.subscriber_disconnects = %d", got)
	}

	// Resume from the token: the catch-up notification carries the gap
	// count and the full current result; deliveries then continue.
	tok := sub.Resume()
	if tok.CQ != "q" || tok.Seq != 2 {
		t.Fatalf("resume token = %+v", tok)
	}
	sub2, catch, err := m.Resubscribe(tok, SubOptions{Buffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Cancel()
	if catch.Seq != 3 || catch.Dropped != 1 || catch.Complete == nil || catch.Complete.Len() != 2 {
		t.Fatalf("catch-up = %s", renderNote(catch))
	}
	refreshOnce(t, s, m, "C", 30)
	n3 := <-sub2.Ch()
	if n3.Seq != 4 || n3.Dropped != 0 {
		t.Fatalf("post-resume delivery = %+v", n3)
	}
}

// TestSubscriberPanicDisconnects: a panicking callback subscriber is
// detached; channel subscribers on the same CQ keep receiving.
func TestSubscriberPanicDisconnects(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Metrics: reg, Logf: func(string, ...any) {}})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "q", Query: "SELECT * FROM stocks WHERE price > 0",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	var fnCalls atomic.Int64
	cancelFn, err := m.SubscribeFunc("q", func(n Notification, closed bool) {
		if closed {
			return
		}
		fnCalls.Add(1)
		panic("subscriber bug")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancelFn()
	ch, cancelCh, err := m.Subscribe("q", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelCh()

	refreshOnce(t, s, m, "A", 10)
	refreshOnce(t, s, m, "B", 20)

	if got := fnCalls.Load(); got != 1 {
		t.Errorf("panicking subscriber called %d times, want 1 (detached after panic)", got)
	}
	if notes := drain(ch); len(notes) != 2 {
		t.Errorf("channel subscriber got %d notifications, want 2", len(notes))
	}
	if got := reg.Snapshot().Counters["cq.subscriber_panics"]; got != 1 {
		t.Errorf("cq.subscriber_panics = %d", got)
	}
}

// blockJournal records registry operations in order and, once armed,
// parks CQExecuted on a gate so the test can race a Drop against an
// in-flight refresh that is journaling.
type blockJournal struct {
	mu      sync.Mutex
	ops     []string
	armed   atomic.Bool
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
}

func newBlockJournal() *blockJournal {
	return &blockJournal{entered: make(chan struct{}), gate: make(chan struct{})}
}

func (j *blockJournal) record(op string) {
	j.mu.Lock()
	j.ops = append(j.ops, op)
	j.mu.Unlock()
}

func (j *blockJournal) snapshot() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]string(nil), j.ops...)
}

func (j *blockJournal) CQRegistered(e wal.CQEntry) error {
	j.record("register:" + e.Name)
	return nil
}

func (j *blockJournal) CQExecuted(name string, seq int, ts vclock.Timestamp, change *delta.Delta, terminated bool) error {
	if j.armed.Load() {
		j.once.Do(func() { close(j.entered) })
		<-j.gate
	}
	j.record(fmt.Sprintf("exec:%s:%d", name, seq))
	return nil
}

func (j *blockJournal) CQDropped(name string) error {
	j.record("drop:" + name)
	return nil
}

// TestDropRaceKeepsJournalOrder is the WAL-order regression test for
// satellite (b): a Drop racing an in-flight refresh must not write its
// drop record before the refresh's execution record (recovery refuses
// an execution for an unregistered CQ), and the dropped CQ must not be
// resurrected by the still-running refresh.
func TestDropRaceKeepsJournalOrder(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	j := newBlockJournal()
	m := NewManagerConfig(s, Config{UseDRA: true, AutoGC: true, Journal: j})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "q", Query: "SELECT * FROM stocks WHERE price > 0",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}
	j.armed.Store(true)
	insertStock(t, s, "A", 10)

	pollDone := make(chan error, 1)
	go func() {
		_, err := m.Poll()
		pollDone <- err
	}()
	<-j.entered // the refresh is inside CQExecuted, holding the CQ's lock

	dropDone := make(chan error, 1)
	go func() { dropDone <- m.Drop("q") }()

	// The drop must block behind the in-flight refresh: give it time to
	// misbehave, then check no drop record has been journaled.
	time.Sleep(50 * time.Millisecond)
	for _, op := range j.snapshot() {
		if strings.HasPrefix(op, "drop:") {
			t.Fatal("drop journaled while a refresh was mid-execution")
		}
	}
	close(j.gate)
	if err := <-pollDone; err != nil {
		t.Fatalf("poll: %v", err)
	}
	if err := <-dropDone; err != nil {
		t.Fatalf("drop: %v", err)
	}

	ops := j.snapshot()
	execAt, dropAt := -1, -1
	for i, op := range ops {
		switch {
		case strings.HasPrefix(op, "exec:q:"):
			execAt = i
		case op == "drop:q":
			dropAt = i
		}
	}
	if execAt == -1 || dropAt == -1 || execAt > dropAt {
		t.Fatalf("journal order %v: want exec before drop", ops)
	}
	if _, err := m.State("q"); !errors.Is(err, ErrNoSuchCQ) {
		t.Fatalf("dropped CQ resurrected: State err = %v", err)
	}
	// A later poll must not touch the dropped instance.
	insertStock(t, s, "B", 20)
	if _, err := m.Poll(); err != nil {
		t.Fatalf("post-drop poll: %v", err)
	}
	for _, op := range j.snapshot()[dropAt+1:] {
		if strings.HasPrefix(op, "exec:q:") {
			t.Fatalf("execution journaled after drop: %v", j.snapshot())
		}
	}
}

// TestSubscribeDropChurnStress races Subscribe/Cancel (all three
// policies), Register/Drop, and commits driving push dispatch. Run
// under -race this is the satellite (c) concurrency suite; correctness
// here is "no race, no deadlock, no panic escapes".
func TestSubscribeDropChurnStress(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	m := NewManagerConfig(s, Config{
		UseDRA: true, AutoGC: true, Push: true, Parallelism: 4,
		Guard: guard.Policy{FailureThreshold: -1},
		Logf:  func(string, ...any) {},
	})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{
		Name: "watch", Query: "SELECT * FROM stocks WHERE price > 50",
		Trigger: updatesTrigger(),
	}); err != nil {
		t.Fatal(err)
	}

	const iters = 150
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // committer: drives push dispatch
		defer wg.Done()
		for i := 0; i < iters; i++ {
			tx := s.Begin()
			if _, err := tx.Insert("stocks", []relation.Value{
				relation.Str(fmt.Sprintf("c%d", i)), relation.Float(float64(i % 120)),
			}); err == nil {
				_, _ = tx.Commit()
			}
		}
	}()
	go func() { // channel-subscriber churn across policies
		defer wg.Done()
		policies := []DeliveryPolicy{DropNewest, DropOldest, Disconnect}
		for i := 0; i < iters; i++ {
			sub, err := m.SubscribeOpts("watch", SubOptions{Buffer: 1, Policy: policies[i%3]})
			if err != nil {
				continue
			}
			drain(sub.Ch())
			sub.Cancel()
		}
	}()
	go func() { // fn-subscriber churn
		defer wg.Done()
		for i := 0; i < iters; i++ {
			cancel, err := m.SubscribeFunc("watch", func(n Notification, closed bool) {})
			if err != nil {
				continue
			}
			cancel()
		}
	}()
	go func() { // register/drop churn during dispatch
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			name := fmt.Sprintf("temp%d", i)
			if _, err := m.Register(Def{
				Name: name, Query: "SELECT * FROM stocks WHERE price > 100",
				Trigger: updatesTrigger(),
			}); err != nil {
				continue
			}
			_ = m.Drop(name)
		}
	}()
	wg.Wait()
	m.FlushPush()
	if _, err := m.Poll(); err != nil {
		t.Fatalf("final poll: %v", err)
	}
	st, err := m.State("watch")
	if err != nil {
		t.Fatal(err)
	}
	if st.Health != "healthy" {
		t.Errorf("watch health = %q after stress", st.Health)
	}
}
