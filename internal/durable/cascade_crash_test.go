package durable_test

import (
	"fmt"
	"testing"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/durable"
	"github.com/diorama/continual/internal/faults"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/wal"
)

// Cascade kill-point sweep: a two-stage materialization pipeline
// (stocks -> mid INTO hot -> leaf) crashes at every write boundary.
// Recovery must resume the DAG in topological order — mid's target
// table restored before leaf's plan binds to it — and catch up
// differentially: the derived table reconverges to mid's predicate and
// the leaf result to the composed predicate, with no full-stop rebuild
// observable as divergence from the serial oracle.

const cascadeMidQuery = `CREATE CONTINUAL QUERY mid AS
	SELECT name, v INTO hot FROM stocks WHERE v >= 20
	TRIGGER UPDATES 1`

const cascadeLeafQuery = `CREATE CONTINUAL QUERY leaf AS
	SELECT name, v FROM hot WHERE v >= 60
	TRIGGER UPDATES 1`

// setupCascade creates and seeds the base table, then registers the
// pipeline. Seeds straddle both predicates.
func setupCascade(t *testing.T, store *storage.Store, mgr *cq.Manager) {
	t.Helper()
	if err := store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	insertRow(t, store, "seed-hi", 90)
	insertRow(t, store, "seed-lo", 10)
	if mgr != nil {
		if _, err := mgr.RegisterSQL(cascadeMidQuery); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.RegisterSQL(cascadeLeafQuery); err != nil {
			t.Fatal(err)
		}
	}
}

// filterGE projects a table state through `v >= bound`.
func filterGE(t *testing.T, table *relation.Relation, bound int64) *relation.Relation {
	t.Helper()
	out := relation.New(table.Schema())
	for _, tu := range table.Tuples() {
		if tu.Values[1].AsInt() >= bound {
			if err := out.Insert(tu); err != nil {
				t.Fatal(err)
			}
		}
	}
	return out
}

// cascadeOracle runs the script serially without CQs, returning the
// base-table state after every prefix.
func cascadeOracle(t *testing.T, ops []op) []*relation.Relation {
	t.Helper()
	s := storage.NewStore()
	setupCascade(t, s, nil)
	snaps := make([]*relation.Relation, 0, len(ops)+1)
	snap, _ := s.Snapshot("stocks")
	snaps = append(snaps, snap.Clone())
	for _, o := range ops {
		if err := applyOp(t, s, o); err != nil {
			t.Fatal(err)
		}
		snap, _ := s.Snapshot("stocks")
		snaps = append(snaps, snap.Clone())
	}
	return snaps
}

func openCascadeSys(t *testing.T, fs wal.FS, tag string) *durable.System {
	t.Helper()
	sys, err := durable.Open(durable.Options{
		Dir:   "data",
		FS:    fs,
		Fsync: wal.FsyncAlways,
		CQ:    cq.Config{UseDRA: true, AutoGC: true},
	})
	if err != nil {
		t.Fatalf("%s: open: %v", tag, err)
	}
	return sys
}

// verifyCascadeRecovery reopens the crashed directory and checks the
// DAG recovery contract: both CQs resumed, derived table present, and
// — after continuing the workload differentially — derived table and
// leaf result both converged to the oracle's final state.
func verifyCascadeRecovery(t *testing.T, fs *faults.MemFS, ops []op, oracle []*relation.Relation, acked int, tag string) {
	t.Helper()
	sys := openCascadeSys(t, fs, tag)
	defer sys.Close()
	if sys.Recovery.CQs != 2 {
		t.Fatalf("%s: resumed %d CQs, want 2", tag, sys.Recovery.CQs)
	}
	// Topological resume implies the derived table is bound: leaf's plan
	// compiled against hot during Open, so hot must exist already.
	if _, err := sys.Store.Schema("hot"); err != nil {
		t.Fatalf("%s: derived table missing after recovery: %v", tag, err)
	}

	got, err := sys.Store.Snapshot("stocks")
	if err != nil {
		t.Fatal(err)
	}
	m := -1
	for cand := acked; cand <= acked+1 && cand < len(oracle); cand++ {
		if got.EqualContents(oracle[cand]) {
			m = cand
			break
		}
	}
	if m < 0 {
		t.Fatalf("%s: recovered base table is no oracle prefix >= %d acked:\n%v", tag, acked, got)
	}

	// Continue from exactly the recovered prefix; staged polls fold the
	// remaining script through both stages differentially.
	for i := m; i < len(ops); i++ {
		if err := applyOp(t, sys.Store, ops[i]); err != nil {
			t.Fatalf("%s: continue op %d: %v", tag, i, err)
		}
		if (i+1)%3 == 0 {
			if _, err := sys.Manager.Poll(); err != nil {
				t.Fatalf("%s: continue poll: %v", tag, err)
			}
		}
	}
	if _, err := sys.Manager.Poll(); err != nil {
		t.Fatalf("%s: final poll: %v", tag, err)
	}

	final, _ := sys.Store.Snapshot("stocks")
	if !final.EqualContents(oracle[len(oracle)-1]) {
		t.Fatalf("%s: final base table diverged from oracle", tag)
	}
	hot, err := sys.Store.Contents("hot")
	if err != nil {
		t.Fatal(err)
	}
	if want := filterGE(t, final, 20); !hot.EqualContents(want) {
		t.Fatalf("%s: derived table %v, want %v", tag, hot, want)
	}
	leaf, err := sys.Manager.Result("leaf")
	if err != nil {
		t.Fatal(err)
	}
	if want := filterGE(t, final, 60); !leaf.EqualContents(want) {
		t.Fatalf("%s: leaf result %v, want %v", tag, leaf, want)
	}
}

func cascadeCrashRun(t *testing.T, seed int64, ops []op, oracle []*relation.Relation, kill, ckptAt int, tag string) {
	t.Helper()
	fs := faults.NewMemFS(seed)
	sys := openCascadeSys(t, fs, tag)
	setupCascade(t, sys.Store, sys.Manager)
	fs.KillAfterWrites(kill)
	acked := runScript(t, sys, ops, ckptAt)
	if acked == len(ops) && !fs.Frozen() {
		_ = sys.Manager.Close()
		t.Fatalf("%s: kill point %d beyond workload", tag, kill)
	}
	_ = sys.Manager.Close()
	fs.Crash()
	verifyCascadeRecovery(t, fs, ops, oracle, acked, tag)
}

// TestCascadeCrashSweep arms a kill at every write boundary of the
// cascading workload. Crash windows this covers include: between mid's
// materialize commit and its execution journal (the reconciling apply
// turns the replayed delta into no-ops), between mid's journal and
// leaf's refresh (leaf catches up from hot's recovered window), and
// mid-checkpoint.
func TestCascadeCrashSweep(t *testing.T) {
	const scriptLen = 12
	ops := buildScript(96, scriptLen)
	oracle := cascadeOracle(t, ops)
	ckptAt := scriptLen / 2

	// Instrumented clean run to learn the write budget of the script
	// region (registration writes excluded — the sweep arms after setup).
	fs := faults.NewMemFS(0)
	sys := openCascadeSys(t, fs, "budget")
	setupCascade(t, sys.Store, sys.Manager)
	preWrites := fs.Writes()
	if got := runScript(t, sys, ops, ckptAt); got != len(ops) {
		t.Fatalf("clean run stopped at %d", got)
	}
	scriptWrites := fs.Writes() - preWrites
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if scriptWrites < scriptLen {
		t.Fatalf("suspicious write count %d for %d ops", scriptWrites, scriptLen)
	}

	for kill := 1; kill <= scriptWrites; kill++ {
		cascadeCrashRun(t, int64(2000+kill), ops, oracle, kill, ckptAt, fmt.Sprintf("kill=%d", kill))
	}
}

// TestCascadeCrashDuringRegistration kills between the target-table
// seed commit and the registration journal: the next Open must not see
// mid, and re-registering adopts the orphaned target table.
func TestCascadeCrashDuringRegistration(t *testing.T) {
	fs := faults.NewMemFS(11)
	sys := openCascadeSys(t, fs, "reg")
	if err := sys.Store.CreateTable("stocks", stockSchema()); err != nil {
		t.Fatal(err)
	}
	insertRow(t, sys.Store, "seed-hi", 90)
	insertRow(t, sys.Store, "seed-lo", 10)

	// The INTO registration writes the seed commit, then the CQRegistered
	// record. Sweep the kill across that window; each failure mode must
	// recover to a usable system.
	for kill := 1; kill <= 4; kill++ {
		fs2 := faults.NewMemFS(int64(100 + kill))
		s2 := openCascadeSys(t, fs2, fmt.Sprintf("reg kill=%d", kill))
		if err := s2.Store.CreateTable("stocks", stockSchema()); err != nil {
			t.Fatal(err)
		}
		insertRow(t, s2.Store, "seed-hi", 90)
		fs2.KillAfterWrites(kill)
		_, regErr := s2.Manager.RegisterSQL(cascadeMidQuery)
		_ = s2.Manager.Close()
		fs2.Crash()

		r := openCascadeSys(t, fs2, fmt.Sprintf("reg reopen kill=%d", kill))
		if regErr == nil && r.Recovery.CQs != 1 {
			t.Fatalf("kill=%d: acked registration lost (%d CQs)", kill, r.Recovery.CQs)
		}
		// Whether or not the seed commit survived without its journal
		// record, a fresh registration must succeed — adopting an orphan
		// target if one was left behind.
		if regErr != nil {
			if _, err := r.Manager.RegisterSQL(cascadeMidQuery); err != nil {
				t.Fatalf("kill=%d: re-register after crash: %v", kill, err)
			}
		}
		hot, err := r.Store.Contents("hot")
		if err != nil {
			t.Fatalf("kill=%d: no target table: %v", kill, err)
		}
		snap, _ := r.Store.Snapshot("stocks")
		if want := filterGE(t, snap, 20); !hot.EqualContents(want) {
			t.Fatalf("kill=%d: target %v, want %v", kill, hot, want)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("kill=%d: close: %v", kill, err)
		}
	}
	_ = sys.Close()
}
