package dra

import (
	"sync/atomic"
	"time"

	"github.com/diorama/continual/internal/obs"
)

// spanSample thins per-Reevaluate trace recording to one span every
// spanSample calls (the first call always records). Counters and the
// latency histogram still see every call; only the span — the expensive
// part of the hook (allocation plus a mutexed ring write) — is sampled,
// keeping the instrumented hot path within a few percent of
// uninstrumented (BenchmarkObsOverhead).
const spanSample = 16

// Metrics is the engine's bundle of obs handles, resolved once at
// construction. Result.Stats keeps the per-call numbers (used by the
// benchmark harness); Metrics accumulates them across calls for the
// /stats surface. With a nil *Metrics the engine is uninstrumented: the
// only cost in Reevaluate is one nil check.
type Metrics struct {
	Reevaluations *obs.Counter   // dra.reevaluations
	Terms         *obs.Counter   // dra.terms_evaluated
	DeltaRows     *obs.Counter   // dra.delta_rows_consumed
	PreTuples     *obs.Counter   // dra.pre_tuples_scanned
	Differential  *obs.Counter   // dra.differential_path
	Fallbacks     *obs.Counter   // dra.fallback_path
	Skips         *obs.Counter   // dra.skipped
	IndexHits     *obs.Counter   // dra.index_cache.hits
	IndexMisses   *obs.Counter   // dra.index_cache.misses
	Repicks       *obs.Counter   // dra.strategy.repicks
	// VecSteps counts evaluations served by the columnar kernels;
	// VecFallbacks counts the ones that started vectorized but hit an
	// unrepresentable value and re-ran on the row path.
	VecSteps     *obs.Counter // dra.vector_steps
	VecFallbacks *obs.Counter // dra.vector_fallbacks
	Latency       *obs.Histogram // dra.reevaluate_ns
	PrepareNS     *obs.Histogram // dra.prepare_ns
	Traces        *obs.TraceLog  // per-Reevaluate spans, sampled

	// stratTruthTable / stratIncremental / stratPropagate gauge how many
	// live Prepared plans currently run each strategy; re-picks move a
	// unit between gauges and Close decrements.
	stratTruthTable  *obs.Gauge // dra.strategy.truth_table
	stratIncremental *obs.Gauge // dra.strategy.incremental
	stratPropagate   *obs.Gauge // dra.strategy.propagate

	calls atomic.Uint64 // span sampling cursor
}

// strategyGauge maps a concrete (non-Auto) strategy to its gauge; nil
// for Auto or an unknown value.
func (m *Metrics) strategyGauge(s Strategy) *obs.Gauge {
	switch s {
	case StrategyTruthTable:
		return m.stratTruthTable
	case StrategyIncremental:
		return m.stratIncremental
	case StrategyPropagate:
		return m.stratPropagate
	default:
		return nil
	}
}

// startSpan begins a sampled per-Reevaluate span; nil outside the
// sample.
func (m *Metrics) startSpan() *obs.Span {
	if m.calls.Add(1)%spanSample != 1 {
		return nil
	}
	return m.Traces.Start("dra.reevaluate")
}

// NewMetrics resolves the engine's instruments from a registry. A nil
// registry yields nil handles throughout — every update is a no-op —
// so callers can thread Config.Metrics straight through.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Reevaluations: reg.Counter("dra.reevaluations"),
		Terms:         reg.Counter("dra.terms_evaluated"),
		DeltaRows:     reg.Counter("dra.delta_rows_consumed"),
		PreTuples:     reg.Counter("dra.pre_tuples_scanned"),
		Differential:  reg.Counter("dra.differential_path"),
		Fallbacks:     reg.Counter("dra.fallback_path"),
		Skips:         reg.Counter("dra.skipped"),
		IndexHits:     reg.Counter("dra.index_cache.hits"),
		IndexMisses:   reg.Counter("dra.index_cache.misses"),
		Repicks:       reg.Counter("dra.strategy.repicks"),
		VecSteps:      reg.Counter("dra.vector_steps"),
		VecFallbacks:  reg.Counter("dra.vector_fallbacks"),
		Latency:       reg.Histogram("dra.reevaluate_ns"),
		PrepareNS:     reg.Histogram("dra.prepare_ns"),
		Traces:        reg.Traces(),

		stratTruthTable:  reg.Gauge("dra.strategy.truth_table"),
		stratIncremental: reg.Gauge("dra.strategy.incremental"),
		stratPropagate:   reg.Gauge("dra.strategy.propagate"),
	}
}

// Instrument attaches the engine to a registry (nil leaves it
// uninstrumented). Call before the engine is shared.
func (e *Engine) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	e.Metrics = NewMetrics(reg)
}

// observe folds one finished Reevaluate into the cumulative instruments
// and records its span (span may be nil when tracing is off).
func (m *Metrics) observe(st Stats, span *obs.Span, elapsed time.Duration) {
	m.Reevaluations.Inc()
	m.Terms.Add(int64(st.Terms))
	m.DeltaRows.Add(int64(st.DeltaRows))
	m.PreTuples.Add(int64(st.PreTuplesScanned))
	m.IndexHits.Add(int64(st.IndexCacheHits))
	m.IndexMisses.Add(int64(st.IndexCacheMisses))
	switch {
	case st.Skipped:
		m.Skips.Inc()
	case st.FellBack:
		m.Fallbacks.Inc()
	default:
		m.Differential.Inc()
	}
	if span != nil {
		span.Fields = append(span.Fields,
			obs.Field{Key: "terms", Value: int64(st.Terms)},
			obs.Field{Key: "delta_rows", Value: int64(st.DeltaRows)},
			obs.Field{Key: "pre_tuples", Value: int64(st.PreTuplesScanned)},
		)
		if st.FellBack {
			span.SetField("fell_back", 1)
		}
		if st.Skipped {
			span.SetField("skipped", 1)
		}
		span.Finish()
	}
	m.Latency.Observe(elapsed)
}
