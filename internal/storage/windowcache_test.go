package storage

import (
	"errors"
	"sync"
	"testing"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
)

func sv(name string, price float64) []relation.Value {
	return []relation.Value{relation.Str(name), relation.Float(price)}
}

func TestWindowCacheSharesFetches(t *testing.T) {
	s := newStockStore(t)
	reg := obs.NewRegistry()
	s.Instrument(reg)
	t0 := s.Now()
	tx := s.Begin()
	if _, err := tx.Insert("stocks", sv("DEC", 150)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("stocks", sv("IBM", 75)); err != nil {
		t.Fatal(err)
	}
	t1 := mustCommit(t, tx)

	c := s.NewWindowCache()
	w1, err := c.Window("stocks", t0, t1, false)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Len() != 2 {
		t.Fatalf("window len = %d, want 2", w1.Len())
	}
	w2, err := c.Window("stocks", t0, t1, false)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Error("second fetch of the same window must return the cached entry")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A different window is its own entry.
	if _, err := c.Window("stocks", t1, s.Now(), false); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = %d hits / %d misses, want 1/2", hits, misses)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["storage.window_cache.hits"]; got != 1 {
		t.Errorf("storage.window_cache.hits = %d, want 1", got)
	}
	if got := snap.Counters["storage.window_cache.misses"]; got != 2 {
		t.Errorf("storage.window_cache.misses = %d, want 2", got)
	}
}

func TestWindowCacheCompactDerivesFromRaw(t *testing.T) {
	s := newStockStore(t)
	t0 := s.Now()
	tx := s.Begin()
	tid, err := tx.Insert("stocks", sv("DEC", 150))
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, tx)
	tx = s.Begin()
	if err := tx.Update("stocks", tid, sv("DEC", 149)); err != nil {
		t.Fatal(err)
	}
	t1 := mustCommit(t, tx)

	c := s.NewWindowCache()
	raw, err := c.Window("stocks", t0, t1, false)
	if err != nil {
		t.Fatal(err)
	}
	compacted, err := c.Window("stocks", t0, t1, true)
	if err != nil {
		t.Fatal(err)
	}
	// Insert then update folds to a single net insert at 149.
	if raw.Len() <= compacted.Len() {
		t.Fatalf("compacted window (%d rows) must be smaller than raw (%d rows)", compacted.Len(), raw.Len())
	}
	if compacted.Len() != 1 {
		t.Fatalf("compacted len = %d, want 1", compacted.Len())
	}
	again, err := c.Window("stocks", t0, t1, true)
	if err != nil {
		t.Fatal(err)
	}
	if again != compacted {
		t.Error("compacted entry must be cached too")
	}
}

// TestWindowCacheSurvivesGC pins down the ownership contract: a cached
// window keeps serving the round even if garbage collection truncates
// (and shifts) the live delta rows it came from mid-round.
func TestWindowCacheSurvivesGC(t *testing.T) {
	s := newStockStore(t)
	t0 := s.Now()
	tx := s.Begin()
	if _, err := tx.Insert("stocks", sv("DEC", 150)); err != nil {
		t.Fatal(err)
	}
	t1 := mustCommit(t, tx)

	c := s.NewWindowCache()
	w, err := c.Window("stocks", t0, t1, false)
	if err != nil {
		t.Fatal(err)
	}
	s.CollectGarbage(s.Now())
	if w.Len() != 1 || w.Rows()[0].New[0].AsString() != "DEC" {
		t.Fatalf("cached window corrupted by GC: %+v", w.Rows())
	}
	// The cached entry still serves hits...
	if again, err := c.Window("stocks", t0, t1, false); err != nil || again != w {
		t.Fatalf("cached window no longer served after GC: %v", err)
	}
	// ...while a fresh fetch of the discarded range reports staleness.
	if _, err := s.NewWindowCache().Window("stocks", t0, t1, false); !errors.Is(err, ErrStaleWindow) {
		t.Fatalf("fresh fetch after GC = %v, want ErrStaleWindow", err)
	}
}

func TestWindowCacheUnknownTable(t *testing.T) {
	s := newStockStore(t)
	if _, err := s.NewWindowCache().Window("nope", 0, s.Now(), false); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v, want ErrNoSuchTable", err)
	}
}

func TestWindowCacheConcurrent(t *testing.T) {
	s := newStockStore(t)
	t0 := s.Now()
	tx := s.Begin()
	for i := 0; i < 50; i++ {
		if _, err := tx.Insert("stocks", sv("S", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	t1 := mustCommit(t, tx)

	c := s.NewWindowCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d, err := c.Window("stocks", t0, t1, i%2 == 0)
				if err != nil || d.Len() != 50 {
					t.Errorf("window: len=%d err=%v", d.Len(), err)
					return
				}
			}
		}()
	}
	wg.Wait()
	hits, misses := c.Stats()
	if misses != 2 || hits != 8*50-2 {
		t.Errorf("stats = %d hits / %d misses, want %d/2", hits, misses, 8*50-2)
	}
}
