package cq

// Materializing continual queries (SELECT ... INTO target): each refresh
// commits the result delta into a derived base table through the
// ordinary storage commit path, so the WAL sink, the commit hook, the
// push router and the window caches all see derived deltas as ordinary
// deltas — downstream CQs over the target need no new machinery.
//
// The apply is RECONCILING, not blind: every staged operation is checked
// against the target's current contents and rows the table already
// reflects stage as no-ops. That property carries the crash-recovery
// contract: the materialize commit lands BEFORE the execution journals
// (refreshInstance), so the WAL can hold a committed derived delta whose
// execution record was lost — recovery then resumes the producer one
// sequence back, the catch-up refresh re-derives the change, and
// reconciliation reduces the already-applied part to nothing. A refresh
// whose reconciliation stages zero operations commits nothing at all (no
// clock tick, no hook, no downstream wake).

import (
	"fmt"

	"github.com/diorama/continual/internal/cascade"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/dra"
	"github.com/diorama/continual/internal/relation"
)

// materializeLocked commits one refresh's change into the instance's
// INTO target. Caller holds inst.mu; inst.prev still holds the previous
// result (ApplyTo runs after journaling).
func (m *Manager) materializeLocked(inst *instance, res *dra.Result) error {
	d := res.Delta
	if inst.needsReconcile || d == nil {
		// First refresh after recovery (or an evaluation path without a
		// row delta): the crash window may have left the target a full
		// refresh away from the journaled sequence — in either direction,
		// since the sources can revert while the producer is down — so
		// reconcile the whole target against the new result once, then
		// return to delta-driven applies.
		want := res.ApplyTo(inst.prev.Clone())
		if err := m.reconcileTarget(inst, want); err != nil {
			return err
		}
		inst.needsReconcile = false
		return nil
	}
	if d.Len() == 0 {
		return nil
	}
	cur, err := m.store.Contents(inst.into)
	if err != nil {
		return err
	}
	return m.commitReconciled(inst, cur, d.Rows())
}

// reconcileTarget commits whatever transforms the target's current
// contents into want — the seed at registration, the adoption of an
// orphaned target, and the post-recovery catch-up all reduce to it.
func (m *Manager) reconcileTarget(inst *instance, want *relation.Relation) error {
	cur, err := m.store.Contents(inst.into)
	if err != nil {
		return err
	}
	d, err := delta.Diff(cur, want, 0)
	if err != nil {
		return err
	}
	if d.Len() == 0 {
		return nil
	}
	return m.commitReconciled(inst, cur, d.Rows())
}

// commitReconciled stages the delta rows against the target in one
// transaction, skipping rows the table already reflects, and commits
// with the producer's provenance (CommitEvent.Origin/Depth). Result
// TIDs carry into the target unchanged: a downstream CQ's deletes and
// modifies must address the same rows the upstream's inserts created.
func (m *Manager) commitReconciled(inst *instance, cur *relation.Relation, rows []delta.Row) error {
	// overlay tracks the effect of already-staged rows so a TID touched
	// twice in one delta reconciles against its in-transaction state,
	// not the pre-transaction snapshot.
	type rowState struct {
		vals    []relation.Value
		present bool
	}
	overlay := make(map[relation.TID]rowState)
	lookup := func(tid relation.TID) ([]relation.Value, bool) {
		if st, ok := overlay[tid]; ok {
			return st.vals, st.present
		}
		t, ok := cur.Lookup(tid)
		if !ok {
			return nil, false
		}
		return t.Values, true
	}
	tx := m.store.Begin()
	ops := 0
	for _, r := range rows {
		if r.Kind() == delta.Delete {
			if _, ok := lookup(r.TID); ok {
				if err := tx.Delete(inst.into, r.TID); err != nil {
					tx.Abort()
					return err
				}
				ops++
			}
			overlay[r.TID] = rowState{}
			continue
		}
		// Insert and Modify both mean "the row's value is now New".
		have, ok := lookup(r.TID)
		switch {
		case ok && valuesEqual(have, r.New):
			// Already reflected — the crash-window no-op.
		case ok:
			if err := tx.Update(inst.into, r.TID, r.New); err != nil {
				tx.Abort()
				return err
			}
			ops++
		default:
			if err := tx.InsertWithTID(inst.into, r.TID, r.New); err != nil {
				tx.Abort()
				return err
			}
			ops++
		}
		overlay[r.TID] = rowState{vals: r.New, present: true}
	}
	if ops == 0 {
		tx.Abort()
		return nil
	}
	tx.SetOrigin(inst.def.Name, m.dag.Stage(inst.def.Name)+1)
	if _, err := tx.Commit(); err != nil {
		return err
	}
	if mm := m.met; mm != nil {
		mm.materializeCommits.Inc()
		mm.materializeRows.Add(int64(ops))
	}
	return nil
}

// ensureTargetLocked creates the materialization target for a CQ being
// registered — or adopts an existing producerless table with a matching
// shape, the orphan a crash between the seed commit and the
// registration journal leaves behind — and seeds it to the initial
// result. Caller holds m.mu. Reports whether the table was created here
// (so the caller's rollback knows to drop it).
func (m *Manager) ensureTargetLocked(inst *instance, initial *relation.Relation) (created bool, err error) {
	schema := initial.Schema()
	if existing, serr := m.store.Schema(inst.into); serr == nil {
		if !existing.TypesEqual(schema) {
			return false, fmt.Errorf("%w: table %q exists with schema %s (query produces %s)",
				ErrNameCollision, inst.into, existing, schema)
		}
	} else {
		if cerr := m.store.CreateTable(inst.into, schema); cerr != nil {
			return false, cerr
		}
		created = true
	}
	return created, m.reconcileTarget(inst, initial)
}

// CreateTable creates a base table through the manager, so DDL shares
// the continual-query namespace guards: a table may not shadow a
// registered CQ.
func (m *Manager) CreateTable(name string, schema relation.Schema) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.cqs[name]; ok {
		return fmt.Errorf("%w: table %q would shadow a continual query", ErrNameCollision, name)
	}
	return m.store.CreateTable(name, schema)
}

// DropTable drops a base table through the manager, refusing while
// registered CQs still read it (the error lists them) or a materializing
// CQ still produces it.
func (m *Manager) DropTable(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if prod, ok := m.dag.Producer(name); ok {
		return fmt.Errorf("cq: table %q is materialized by %q; drop the query instead", name, prod)
	}
	if deps := m.dag.TableDependents(name); len(deps) > 0 {
		return &cascade.DependentsError{Name: name, Dependents: deps}
	}
	return m.store.DropTable(name)
}

// Deps snapshots the dependency DAG in topological (stage, name) order:
// every registered CQ with its source tables, its INTO target (empty for
// terminal queries) and its refresh stage.
func (m *Manager) Deps() []cascade.Node {
	return m.dag.Describe()
}

func valuesEqual(a, b []relation.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}
