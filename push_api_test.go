package continual

import "testing"

// TestPushModeDeliversWithoutPoll checks the public push option: with
// Options.Push set, a committed update reaches the subscriber without
// any Poll call — FlushPush is the only synchronization.
func TestPushModeDeliversWithoutPoll(t *testing.T) {
	db := OpenWith(Options{Push: true})
	defer func() { _ = db.Close() }()
	if err := db.Exec(`CREATE TABLE stocks (name STRING, price FLOAT)`); err != nil {
		t.Fatal(err)
	}
	if err := db.Exec(`INSERT INTO stocks VALUES ('DEC', 150), ('IBM', 75)`); err != nil {
		t.Fatal(err)
	}
	sub, err := db.Register("expensive", `SELECT * FROM stocks WHERE price > 120`)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Initial().Len() != 1 {
		t.Fatalf("initial = %d", sub.Initial().Len())
	}

	if err := db.Exec(`INSERT INTO stocks VALUES ('MAC', 130)`); err != nil {
		t.Fatal(err)
	}
	db.FlushPush()
	select {
	case c := <-sub.Updates():
		if c.Seq != 2 || len(c.Inserted) != 1 || c.Inserted[0][0] != "MAC" {
			t.Fatalf("change = %+v", c)
		}
	default:
		t.Fatal("no change buffered after FlushPush; push pipeline did not deliver")
	}

	// The commit-driven path consumed the window: a Poll finds nothing,
	// and Seq stays gap-free across the mode boundary.
	if n := db.Poll(); n != 0 {
		t.Fatalf("Poll after push refresh = %d, want 0", n)
	}
	if err := db.Exec(`UPDATE stocks SET price = 80 WHERE name = 'DEC'`); err != nil {
		t.Fatal(err)
	}
	db.FlushPush()
	c := recvChange(t, sub)
	if c.Seq != 3 || len(c.Deleted) != 1 {
		t.Fatalf("change = %+v", c)
	}
}
