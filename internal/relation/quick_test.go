package relation

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator so testing/quick can draw random
// Values across all kinds, including NULLs.
func (Value) Generate(r *rand.Rand, _ int) reflect.Value {
	var v Value
	switch r.Intn(6) {
	case 0:
		v = Int(r.Int63() - math.MaxInt64/2)
	case 1:
		v = Float(math.Float64frombits(r.Uint64()))
		if math.IsNaN(v.AsFloat()) {
			v = Float(0)
		}
	case 2:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + r.Intn(26))
		}
		v = Str(string(b))
	case 3:
		v = Bool(r.Intn(2) == 0)
	case 4:
		v = NullValue()
	default:
		v = TypedNull(Type(1 + r.Intn(4)))
	}
	return reflect.ValueOf(v)
}

// Property: marshal/unmarshal is the identity on Value.
func TestValueMarshalRoundTripQuick(t *testing.T) {
	f := func(v Value) bool {
		data, err := v.MarshalBinary()
		if err != nil {
			return false
		}
		var back Value
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		if v.IsNull() {
			return back.IsNull() && back.Kind == v.Kind
		}
		return back.Equal(v) && back.Kind == v.Kind
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Equal values hash identically.
func TestEqualValuesHashEqualQuick(t *testing.T) {
	f := func(v Value) bool {
		return HashValues([]Value{v}) == HashValues([]Value{v})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric and Compare(v, v) == 0.
func TestCompareAntisymmetricQuick(t *testing.T) {
	f := func(a, b Value) bool {
		return a.Compare(b) == -b.Compare(a) && a.Compare(a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is transitive over random triples.
func TestCompareTransitiveQuick(t *testing.T) {
	f := func(a, b, c Value) bool {
		vs := []Value{a, b, c}
		// Sort the triple by Compare and verify pairwise order holds.
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if vs[i].Compare(vs[j]) > 0 {
					vs[i], vs[j] = vs[j], vs[i]
				}
			}
		}
		return vs[0].Compare(vs[1]) <= 0 && vs[1].Compare(vs[2]) <= 0 && vs[0].Compare(vs[2]) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: CombineTIDs is order-sensitive (provenance (a,b) differs from
// (b,a)) yet deterministic.
func TestCombineTIDsQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		x := CombineTIDs(TID(a), TID(b))
		y := CombineTIDs(TID(a), TID(b))
		if x != y {
			return false
		}
		if a != b && CombineTIDs(TID(a), TID(b)) == CombineTIDs(TID(b), TID(a)) {
			// Collisions are possible in principle but astronomically
			// unlikely for FNV over 16 bytes; treat as failure to catch
			// accidental symmetry.
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
