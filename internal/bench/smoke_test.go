package bench

import "testing"

func TestAllExperimentsRunAtQuickScale(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
		})
	}
}
