package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// E15 measures the parallel group-refresh scheduler: 100 CQs over 4
// shared tables, refreshed by Poll rounds running on worker pools of
// increasing size. The shared delta-window cache makes the per-round
// fetch cost O(tables) instead of O(CQs) — the cache hit rate column is
// (CQs-1)/CQs per table by construction — and the worker pool spreads
// the per-CQ DRA work, so refresh throughput should scale with workers
// until the machine runs out of cores. Speedup is bounded by
// min(workers, GOMAXPROCS); the Note records the host's core count so a
// flat column on a small machine reads as a hardware limit, not a
// scheduler defect.
func E15(scale Scale) (*Table, error) {
	const nTables = 4
	const nCQs = 100
	rounds := scale.Iterations + 3
	batch := scale.BaseRows / 20
	if batch < 10 {
		batch = 10
	}

	t := &Table{
		ID:    "E15",
		Title: "group refresh throughput vs worker-pool size",
		Note: fmt.Sprintf("%d CQs over %d shared tables, %d rounds of %d-row batches per table, seed %d rows/table, host cores %d",
			nCQs, nTables, rounds, batch, scale.BaseRows/nTables, runtime.NumCPU()),
		Header: []string{"workers", "refreshes", "poll ms", "refresh/s", "speedup", "cache hit %"},
	}

	schema := relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
	tableName := func(i int) string { return fmt.Sprintf("stocks%d", i%nTables) }

	var serialTime time.Duration
	// The leading duplicate is an untimed warmup world: it pages in the
	// code paths and grows the runtime's heap target so the measured
	// serial run isn't penalized for going first.
	for run, workers := range []int{1, 1, 2, 4, 8} {
		warmup := run == 0
		// Fresh world per pool size so every configuration does
		// identical work from an identical starting state.
		reg := obs.NewRegistry()
		store := storage.NewStore()
		store.Instrument(reg)
		for i := 0; i < nTables; i++ {
			if err := store.CreateTable(tableName(i), schema); err != nil {
				return nil, err
			}
		}
		seed := func(table string, n, salt int) error {
			tx := store.Begin()
			for i := 0; i < n; i++ {
				v := []relation.Value{
					relation.Str(fmt.Sprintf("%s_%d_%d", table, salt, i)),
					relation.Float(float64((i*37 + salt*13) % 200)),
				}
				if _, err := tx.Insert(table, v); err != nil {
					return err
				}
			}
			_, err := tx.Commit()
			return err
		}
		for i := 0; i < nTables; i++ {
			if err := seed(tableName(i), scale.BaseRows/nTables, -1); err != nil {
				return nil, err
			}
		}

		mgr := cq.NewManagerConfig(store, cq.Config{
			UseDRA:      true,
			AutoGC:      true,
			Parallelism: workers,
			Metrics:     reg,
		})
		for i := 0; i < nCQs; i++ {
			def := cq.Def{
				Name: fmt.Sprintf("cq%d", i),
				Query: fmt.Sprintf("SELECT * FROM %s WHERE price > %d",
					tableName(i), 25*(1+i%4)),
			}
			if _, err := mgr.Register(def); err != nil {
				return nil, err
			}
		}

		refreshes := 0
		var elapsed time.Duration
		for r := 0; r < rounds; r++ {
			for i := 0; i < nTables; i++ {
				if err := seed(tableName(i), batch, r); err != nil {
					return nil, err
				}
			}
			start := time.Now()
			n, err := mgr.Poll()
			elapsed += time.Since(start)
			if err != nil {
				return nil, err
			}
			refreshes += n
		}
		_ = mgr.Close()
		if warmup {
			continue
		}
		if workers == 1 {
			serialTime = elapsed
		}

		snap := reg.Snapshot()
		hits := snap.Counters["storage.window_cache.hits"]
		misses := snap.Counters["storage.window_cache.misses"]
		hitRate := 0.0
		if hits+misses > 0 {
			hitRate = 100 * float64(hits) / float64(hits+misses)
		}
		perSec := 0.0
		if elapsed > 0 {
			perSec = float64(refreshes) / elapsed.Seconds()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(workers),
			fmt.Sprint(refreshes),
			fmt.Sprintf("%.1f", float64(elapsed.Nanoseconds())/1e6),
			fmt.Sprintf("%.0f", perSec),
			ratio(elapsed, serialTime),
			fmt.Sprintf("%.1f", hitRate),
		})
	}
	return t, nil
}
