package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Schemas are immutable by
// convention: methods return new schemas.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from columns. Column names must be unique
// (case-insensitive).
func NewSchema(cols ...Column) (Schema, error) {
	s := Schema{cols: make([]Column, len(cols)), index: make(map[string]int, len(cols))}
	copy(s.cols, cols)
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.index[key]; dup {
			return Schema{}, fmt.Errorf("schema: duplicate column %q", c.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and static
// schemas known to be valid.
func MustSchema(cols ...Column) Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s Schema) Col(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// ColIndex finds a column by name (case-insensitive). It supports both
// bare names ("price") and qualified names ("stocks.price"): a bare lookup
// also matches a single qualified column with that suffix.
func (s Schema) ColIndex(name string) (int, bool) {
	key := strings.ToLower(name)
	if i, ok := s.index[key]; ok {
		return i, true
	}
	// Bare name matching a unique qualified column.
	if !strings.Contains(key, ".") {
		found, idx := 0, -1
		suffix := "." + key
		for i, c := range s.cols {
			if strings.HasSuffix(strings.ToLower(c.Name), suffix) {
				found++
				idx = i
			}
		}
		if found == 1 {
			return idx, true
		}
		return -1, false
	}
	// Qualified name whose bare form exists uniquely.
	if dot := strings.LastIndex(key, "."); dot >= 0 {
		if i, ok := s.index[key[dot+1:]]; ok {
			return i, true
		}
	}
	return -1, false
}

// Equal reports whether two schemas have identical column names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if !strings.EqualFold(s.cols[i].Name, o.cols[i].Name) || s.cols[i].Type != o.cols[i].Type {
			return false
		}
	}
	return true
}

// TypesEqual reports whether two schemas have the same column types in
// order, ignoring names. Union compatibility needs only this.
func (s Schema) TypesEqual(o Schema) bool {
	if len(s.cols) != len(o.cols) {
		return false
	}
	for i := range s.cols {
		if s.cols[i].Type != o.cols[i].Type {
			return false
		}
	}
	return true
}

// Concat appends another schema, qualifying nothing; callers are expected
// to pre-qualify names when joining relations that share column names.
func (s Schema) Concat(o Schema) (Schema, error) {
	cols := make([]Column, 0, len(s.cols)+len(o.cols))
	cols = append(cols, s.cols...)
	cols = append(cols, o.cols...)
	return NewSchema(cols...)
}

// Project returns the schema consisting of the given column indexes.
func (s Schema) Project(idxs []int) Schema {
	cols := make([]Column, len(idxs))
	for i, ix := range idxs {
		cols[i] = s.cols[ix]
	}
	out, err := NewSchema(cols...)
	if err != nil {
		// Duplicate projection targets get positional suffixes.
		for i := range cols {
			cols[i].Name = fmt.Sprintf("%s_%d", cols[i].Name, i)
		}
		out = MustSchema(cols...)
	}
	return out
}

// Qualify returns a schema with every bare column name prefixed by
// "prefix.". Already-qualified names are left alone.
func (s Schema) Qualify(prefix string) Schema {
	cols := make([]Column, len(s.cols))
	for i, c := range s.cols {
		if strings.Contains(c.Name, ".") {
			cols[i] = c
		} else {
			cols[i] = Column{Name: prefix + "." + c.Name, Type: c.Type}
		}
	}
	return MustSchema(cols...)
}

// String renders the schema as "(a INT, b STRING)".
func (s Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}
