package storage

import (
	"errors"
	"testing"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
)

func testSchema(t *testing.T) relation.Schema {
	t.Helper()
	s, err := relation.NewSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTableDeltaLenAndLowWater(t *testing.T) {
	s := NewStore()
	if err := s.CreateTable("stocks", testSchema(t)); err != nil {
		t.Fatal(err)
	}
	tbl, err := s.Table("stocks")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.DeltaLen() != 0 || tbl.LowWater() != 0 {
		t.Fatalf("fresh table: delta len %d, low water %d", tbl.DeltaLen(), tbl.LowWater())
	}

	tx := s.Begin()
	tid, err := tx.Insert("stocks", []relation.Value{relation.Str("DEC"), relation.Float(150)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = s.Begin()
	if err := tx.Update("stocks", tid, []relation.Value{relation.Str("DEC"), relation.Float(155)}); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.DeltaLen(); got != 2 {
		t.Fatalf("delta len = %d, want 2", got)
	}
	want, _ := s.DeltaLen("stocks")
	if tbl.DeltaLen() != want {
		t.Fatalf("Table.DeltaLen %d != Store.DeltaLen %d", tbl.DeltaLen(), want)
	}

	horizon := s.Now()
	if collected := s.CollectGarbage(horizon); collected != 2 {
		t.Fatalf("collected %d rows, want 2", collected)
	}
	if tbl.DeltaLen() != 0 {
		t.Fatalf("delta len after GC = %d, want 0", tbl.DeltaLen())
	}
	if tbl.LowWater() != horizon {
		t.Fatalf("low water = %d, want %d", tbl.LowWater(), horizon)
	}
	if _, err := s.SnapshotAt("stocks", horizon-1); !errors.Is(err, ErrStaleWindow) {
		t.Fatalf("SnapshotAt below low water: err = %v, want ErrStaleWindow", err)
	}
}

func TestStoreInstrumentation(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewStore()
	if err := s.CreateTable("stocks", testSchema(t)); err != nil {
		t.Fatal(err)
	}
	s.Instrument(reg)
	if err := s.CreateTable("bonds", testSchema(t)); err != nil {
		t.Fatal(err)
	}

	tx := s.Begin()
	for i := 0; i < 3; i++ {
		if _, err := tx.Insert("stocks", []relation.Value{relation.Str("X"), relation.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counter("storage.commits"); got != 1 {
		t.Fatalf("storage.commits = %d, want 1", got)
	}
	if got := snap.Counter("storage.commit_rows"); got != 3 {
		t.Fatalf("storage.commit_rows = %d, want 3", got)
	}
	if got := snap.Gauge("storage.delta_len"); got != 3 {
		t.Fatalf("storage.delta_len = %d, want 3", got)
	}
	tbl, _ := s.Table("stocks")
	if got := snap.Gauge("storage.delta_len.stocks"); got != int64(tbl.DeltaLen()) {
		t.Fatalf("storage.delta_len.stocks = %d, want %d", got, tbl.DeltaLen())
	}
	if got := snap.Gauge("storage.tables"); got != 2 {
		t.Fatalf("storage.tables = %d, want 2", got)
	}
	if snap.Histograms["storage.commit_ns"].Count != 1 {
		t.Fatalf("storage.commit_ns count = %d, want 1", snap.Histograms["storage.commit_ns"].Count)
	}

	// Stale-window hits and snapshot reconstructions.
	if _, err := s.SnapshotAt("stocks", s.Now()); err != nil {
		t.Fatal(err)
	}
	s.CollectGarbage(s.Now())
	if _, err := s.SnapshotAt("stocks", 0); !errors.Is(err, ErrStaleWindow) {
		t.Fatalf("err = %v, want ErrStaleWindow", err)
	}
	if _, err := s.DeltaSince("stocks", 0); !errors.Is(err, ErrStaleWindow) {
		t.Fatalf("err = %v, want ErrStaleWindow", err)
	}
	snap = reg.Snapshot()
	if got := snap.Counter("storage.snapshot_reconstructions"); got != 1 {
		t.Fatalf("storage.snapshot_reconstructions = %d, want 1", got)
	}
	if got := snap.Counter("storage.stale_window_hits"); got != 2 {
		t.Fatalf("storage.stale_window_hits = %d, want 2", got)
	}
	if got := snap.Counter("storage.gc_rows_collected"); got != 3 {
		t.Fatalf("storage.gc_rows_collected = %d, want 3", got)
	}
	if got := snap.Gauge("storage.delta_len"); got != 0 {
		t.Fatalf("storage.delta_len after GC = %d, want 0", got)
	}

	// DropTable zeroes the per-table gauge and the table count.
	if err := s.DropTable("bonds"); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Gauge("storage.tables"); got != 1 {
		t.Fatalf("storage.tables after drop = %d, want 1", got)
	}
}
