package sql

import "testing"

// TestRenderRoundTrip checks render → parse → render reaches a fixed
// point for the query shapes the engine supports, which is the property
// the durable CQ registry relies on.
func TestRenderRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT * FROM stocks`,
		`SELECT name, price FROM stocks WHERE price > 120`,
		`SELECT DISTINCT name FROM stocks`,
		`SELECT s.name, o.qty FROM stocks AS s, orders AS o WHERE s.name = o.name`,
		`SELECT s.name FROM stocks AS s JOIN orders AS o ON s.name = o.name WHERE o.qty > 10`,
		`SELECT SUM(amount) AS total FROM accounts`,
		`SELECT branch, COUNT(*) AS n, AVG(amount) FROM accounts GROUP BY branch`,
		`SELECT branch, SUM(amount) FROM accounts GROUP BY branch HAVING SUM(amount) > 100`,
		`SELECT name FROM stocks WHERE NOT (price < 10 OR price > 100) ORDER BY name DESC LIMIT 5`,
		`SELECT name, price * 2 + 1 FROM stocks WHERE name != 'DEC''s'`,
		`SELECT * FROM stocks WHERE price > -5`,
	}
	for _, q := range queries {
		stmt, err := ParseSelect(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		text := stmt.String()
		stmt2, err := ParseSelect(text)
		if err != nil {
			t.Fatalf("reparse of rendered %q (from %q): %v", text, q, err)
		}
		if text2 := stmt2.String(); text2 != text {
			t.Errorf("render not a fixed point:\n  source   %q\n  render 1 %q\n  render 2 %q", q, text, text2)
		}
	}
}
