package sql

import (
	"testing"

	"github.com/diorama/continual/internal/relation"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestParsePaperExample2Query(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM Stocks WHERE price > 120")
	if !sel.Items[0].Star {
		t.Error("expected star projection")
	}
	if len(sel.From) != 1 || sel.From[0].Table != "Stocks" {
		t.Errorf("From = %+v", sel.From)
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Op != ">" {
		t.Fatalf("Where = %#v", sel.Where)
	}
	if col, ok := be.L.(*ColumnRef); !ok || col.Name != "price" {
		t.Errorf("lhs = %#v", be.L)
	}
	if lit, ok := be.R.(*Literal); !ok || lit.Value.AsInt() != 120 {
		t.Errorf("rhs = %#v", be.R)
	}
}

func TestParseCheckingAccountSum(t *testing.T) {
	// Section 5.3: SELECT SUM(amount) FROM CheckingAccounts.
	sel := mustSelect(t, "SELECT SUM(amount) FROM CheckingAccounts")
	if len(sel.Items) != 1 || sel.Items[0].Star {
		t.Fatalf("items = %+v", sel.Items)
	}
	fc, ok := sel.Items[0].Expr.(*FuncCall)
	if !ok || fc.Name != "SUM" {
		t.Fatalf("expr = %#v", sel.Items[0].Expr)
	}
	if !sel.HasAggregates() {
		t.Error("HasAggregates should be true")
	}
}

func TestParseProjectionAliasesAndColumns(t *testing.T) {
	sel := mustSelect(t, "SELECT name AS n, price p, price * 100 FROM stocks")
	if sel.Items[0].Alias != "n" || sel.Items[1].Alias != "p" {
		t.Errorf("aliases = %q %q", sel.Items[0].Alias, sel.Items[1].Alias)
	}
	if _, ok := sel.Items[2].Expr.(*BinaryExpr); !ok {
		t.Errorf("computed projection = %#v", sel.Items[2].Expr)
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM stocks s JOIN trades t ON s.name = t.name WHERE t.volume > 10")
	if len(sel.From) != 2 {
		t.Fatalf("From = %+v", sel.From)
	}
	if sel.From[0].Name() != "s" || sel.From[1].Name() != "t" {
		t.Errorf("aliases = %q %q", sel.From[0].Name(), sel.From[1].Name())
	}
	if sel.From[1].On == nil {
		t.Error("join predicate missing")
	}
	// Comma joins too.
	sel = mustSelect(t, "SELECT * FROM a, b, c WHERE a.x = b.x AND b.y = c.y")
	if len(sel.From) != 3 {
		t.Errorf("comma join From = %+v", sel.From)
	}
	// INNER JOIN synonym.
	sel = mustSelect(t, "SELECT * FROM a INNER JOIN b ON a.x = b.x")
	if len(sel.From) != 2 || sel.From[1].On == nil {
		t.Errorf("inner join = %+v", sel.From)
	}
}

func TestParseGroupByHavingDistinct(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT name, SUM(price) FROM stocks GROUP BY name HAVING SUM(price) > 100")
	if !sel.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if len(sel.GroupBy) != 1 {
		t.Errorf("GroupBy = %+v", sel.GroupBy)
	}
	if sel.Having == nil {
		t.Error("HAVING not parsed")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(a + (b * c))" {
		t.Errorf("precedence: %s", e)
	}
	e, _ = ParseExpr("a = 1 OR b = 2 AND c = 3")
	if e.String() != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Errorf("bool precedence: %s", e)
	}
	e, _ = ParseExpr("NOT a = 1")
	if e.String() != "(NOT (a = 1))" {
		t.Errorf("NOT binding: %s", e)
	}
	e, _ = ParseExpr("(a + b) * c")
	if e.String() != "((a + b) * c)" {
		t.Errorf("parens: %s", e)
	}
	e, _ = ParseExpr("-x + 1")
	if e.String() != "((-x) + 1)" {
		t.Errorf("unary minus: %s", e)
	}
}

func TestParseLiterals(t *testing.T) {
	tests := []struct {
		in   string
		want relation.Value
	}{
		{"42", relation.Int(42)},
		{"3.5", relation.Float(3.5)},
		{"1e3", relation.Float(1000)},
		{"'hi'", relation.Str("hi")},
		{"TRUE", relation.Bool(true)},
		{"FALSE", relation.Bool(false)},
		{"NULL", relation.NullValue()},
	}
	for _, tt := range tests {
		e, err := ParseExpr(tt.in)
		if err != nil {
			t.Errorf("ParseExpr(%q): %v", tt.in, err)
			continue
		}
		lit, ok := e.(*Literal)
		if !ok || !lit.Value.Equal(tt.want) {
			t.Errorf("ParseExpr(%q) = %#v, want %v", tt.in, e, tt.want)
		}
	}
}

func TestParseQualifiedColumnAndAbs(t *testing.T) {
	e, err := ParseExpr("ABS(s.price - 75)")
	if err != nil {
		t.Fatal(err)
	}
	fc, ok := e.(*FuncCall)
	if !ok || fc.Name != "ABS" {
		t.Fatalf("e = %#v", e)
	}
	if fc.String() != "ABS((s.price - 75))" {
		t.Errorf("render: %s", fc)
	}
}

func TestParseCountStar(t *testing.T) {
	e, err := ParseExpr("COUNT(*)")
	if err != nil {
		t.Fatal(err)
	}
	fc := e.(*FuncCall)
	if !fc.Star || fc.Arg != nil {
		t.Errorf("COUNT(*) = %+v", fc)
	}
}

func TestParseInsertUpdateDelete(t *testing.T) {
	stmt, err := Parse("INSERT INTO stocks VALUES ('IBM', 75), ('DEC', 150)")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "stocks" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 2 {
		t.Errorf("insert = %+v", ins)
	}

	stmt, err = Parse("UPDATE stocks SET price = 149, name = 'DEC' WHERE name = 'DEC'")
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*UpdateStmt)
	if len(upd.Set) != 2 || upd.Set[0].Column != "price" || upd.Where == nil {
		t.Errorf("update = %+v", upd)
	}

	stmt, err = Parse("DELETE FROM stocks WHERE price < 100")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table != "stocks" || del.Where == nil {
		t.Errorf("delete = %+v", del)
	}

	stmt, err = Parse("DELETE FROM stocks")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DeleteStmt).Where != nil {
		t.Error("unconditional delete should have nil Where")
	}
}

func TestParseCreateDropTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE stocks (name STRING, price FLOAT, shares INT, active BOOL)")
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if len(ct.Columns) != 4 {
		t.Fatalf("columns = %+v", ct.Columns)
	}
	wantTypes := []relation.Type{relation.TString, relation.TFloat, relation.TInt, relation.TBool}
	for i, w := range wantTypes {
		if ct.Columns[i].Type != w {
			t.Errorf("column %d type = %v, want %v", i, ct.Columns[i].Type, w)
		}
	}
	stmt, err = Parse("DROP TABLE stocks")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DropTableStmt).Table != "stocks" {
		t.Error("drop table name")
	}
}

func TestParseCreateContinualQuery(t *testing.T) {
	stmt, err := Parse(`CREATE CONTINUAL QUERY expensive AS
		SELECT * FROM stocks WHERE price > 120
		TRIGGER EVERY 10
		MODE COMPLETE
		STOP AFTER 100`)
	if err != nil {
		t.Fatal(err)
	}
	cq := stmt.(*CreateCQStmt)
	if cq.Name != "expensive" {
		t.Errorf("name = %q", cq.Name)
	}
	if cq.Trigger.Kind != TriggerEvery || cq.Trigger.Every != 10 {
		t.Errorf("trigger = %+v", cq.Trigger)
	}
	if cq.Mode != ModeComplete {
		t.Errorf("mode = %v", cq.Mode)
	}
	if cq.Stop.AfterN != 100 {
		t.Errorf("stop = %+v", cq.Stop)
	}
}

func TestParseCreateCQEpsilonTrigger(t *testing.T) {
	stmt, err := Parse(`CREATE CONTINUAL QUERY banksum AS
		SELECT SUM(amount) FROM CheckingAccounts
		TRIGGER EPSILON 500000 ON amount`)
	if err != nil {
		t.Fatal(err)
	}
	cq := stmt.(*CreateCQStmt)
	if cq.Trigger.Kind != TriggerEpsilon || cq.Trigger.Bound != 500000 {
		t.Errorf("trigger = %+v", cq.Trigger)
	}
	if cq.Trigger.On == nil {
		t.Error("epsilon ON expression missing")
	}
	if cq.Mode != ModeDifferential {
		t.Errorf("default mode = %v", cq.Mode)
	}
}

func TestParseCreateCQDefaults(t *testing.T) {
	stmt, err := Parse("CREATE CONTINUAL QUERY q AS SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	cq := stmt.(*CreateCQStmt)
	if cq.Trigger.Kind != TriggerUpdates || cq.Trigger.Updates != 1 {
		t.Errorf("default trigger = %+v", cq.Trigger)
	}
	if cq.Stop.AfterN != 0 {
		t.Errorf("default stop = %+v", cq.Stop)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"INSERT stocks VALUES (1)",
		"INSERT INTO stocks (1)",
		"UPDATE stocks price = 1",
		"DELETE stocks",
		"CREATE TABLE t",
		"CREATE TABLE t (a BADTYPE)",
		"CREATE INDEX i",
		"SELECT * FROM t; extra",
		"SELECT * FROM a JOIN b", // missing ON
		"CREATE CONTINUAL QUERY q AS SELECT * FROM t TRIGGER", // dangling trigger
		"SELECT 1 +",
		"SELECT (1 FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSelectRejectsNonSelect(t *testing.T) {
	if _, err := ParseSelect("DELETE FROM t"); err == nil {
		t.Error("ParseSelect should reject DELETE")
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT * FROM t;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	// Rendering then reparsing yields an identical render (idempotence).
	srcs := []string{
		"price > 120 AND name = 'IBM'",
		"ABS(price - 75) > 5",
		"NOT (a OR b)",
		"SUM(x) >= 1000000",
	}
	for _, src := range srcs {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip: %q -> %q", e1.String(), e2.String())
		}
	}
}

func TestParseOrderByLimit(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM stocks ORDER BY price DESC, name LIMIT 10")
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("OrderBy = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("Limit = %d", sel.Limit)
	}
	sel = mustSelect(t, "SELECT * FROM stocks")
	if sel.Limit != -1 {
		t.Errorf("default Limit = %d, want -1", sel.Limit)
	}
	sel = mustSelect(t, "SELECT * FROM stocks ORDER BY price ASC")
	if sel.OrderBy[0].Desc {
		t.Error("ASC parsed as Desc")
	}
}

// Property-style fuzz: rendering a parsed expression and reparsing it is
// a fixed point for a generated family of expressions.
func TestExprRenderReparseFixedPoint(t *testing.T) {
	atoms := []string{"a", "b.c", "1", "2.5", "'s'", "TRUE", "NULL", "ABS(a)", "SUM(x)"}
	ops := []string{"+", "-", "*", "/", "=", "!=", "<", ">", "AND", "OR"}
	n := 0
	for _, l := range atoms {
		for _, r := range atoms {
			for _, op := range ops {
				src := "(" + l + " " + op + " " + r + ")"
				e1, err := ParseExpr(src)
				if err != nil {
					continue // some combos are type-invalid at parse level? none, but be safe
				}
				e2, err := ParseExpr(e1.String())
				if err != nil {
					t.Fatalf("reparse %q: %v", e1.String(), err)
				}
				if e1.String() != e2.String() {
					t.Fatalf("not a fixed point: %q -> %q", e1.String(), e2.String())
				}
				n++
			}
		}
	}
	if n < 500 {
		t.Fatalf("only %d expressions exercised", n)
	}
}
