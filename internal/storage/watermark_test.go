package storage

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

func wmInsert(t *testing.T, s *Store, name string) error {
	t.Helper()
	tx := s.Begin()
	if _, err := tx.Insert("stocks", []relation.Value{relation.Str(name), relation.Float(1)}); err != nil {
		t.Fatal(err)
	}
	_, err := tx.Commit()
	return err
}

func TestWatermarkLevelsAndHardRejection(t *testing.T) {
	s := newStockStore(t)
	reg := obs.NewRegistry()
	s.Instrument(reg)
	s.SetWatermarks(Watermarks{SoftRows: 4, HardRows: 8})

	for i := 0; i < 3; i++ {
		if err := wmInsert(t, s, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if lvl := s.Overload(); lvl != OverloadNone {
		t.Fatalf("3 rows: level = %v", lvl)
	}
	if err := wmInsert(t, s, "r3"); err != nil {
		t.Fatal(err)
	}
	if lvl := s.Overload(); lvl != OverloadSoft {
		t.Fatalf("4 rows: level = %v, want soft", lvl)
	}
	// Soft mode still accepts writes.
	for i := 4; i < 8; i++ {
		if err := wmInsert(t, s, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatalf("soft-mode commit %d: %v", i, err)
		}
	}
	if lvl := s.Overload(); lvl != OverloadHard {
		t.Fatalf("8 rows: level = %v, want hard", lvl)
	}
	// Hard mode rejects the next commit with the typed error, without
	// mutating the table.
	before, _ := s.Snapshot("stocks")
	err := wmInsert(t, s, "rejected")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("hard-mode commit err = %v, want ErrOverloaded", err)
	}
	after, _ := s.Snapshot("stocks")
	if before.Len() != after.Len() {
		t.Fatalf("rejected commit mutated the table: %d -> %d rows", before.Len(), after.Len())
	}
	rows, bytes := s.DeltaUsage()
	if rows != 8 || bytes <= 0 {
		t.Fatalf("DeltaUsage = %d rows, %d bytes", rows, bytes)
	}
	snap := reg.Snapshot()
	if snap.Counters["storage.overload.soft_trips"] != 1 || snap.Counters["storage.overload.hard_trips"] != 1 {
		t.Errorf("trips = soft:%d hard:%d", snap.Counters["storage.overload.soft_trips"], snap.Counters["storage.overload.hard_trips"])
	}
	if snap.Counters["storage.overload.rejects"] != 1 {
		t.Errorf("rejects = %d", snap.Counters["storage.overload.rejects"])
	}
	if snap.Gauges["storage.overload.level"] != int64(OverloadHard) {
		t.Errorf("level gauge = %d", snap.Gauges["storage.overload.level"])
	}

	// GC everything: recovery is hysteretic but a full collect clears
	// to None and commits flow again.
	s.CollectGarbage(s.Now())
	if lvl := s.Overload(); lvl != OverloadNone {
		t.Fatalf("after GC: level = %v", lvl)
	}
	if rows, _ := s.DeltaUsage(); rows != 0 {
		t.Fatalf("after GC: %d delta rows accounted", rows)
	}
	if err := wmInsert(t, s, "recovered"); err != nil {
		t.Fatalf("post-recovery commit: %v", err)
	}
}

func TestWatermarkHysteresis(t *testing.T) {
	s := newStockStore(t)
	s.SetWatermarks(Watermarks{SoftRows: 8, HardRows: 100})
	var tss []vclock.Timestamp
	for i := 0; i < 8; i++ {
		tx := s.Begin()
		if _, err := tx.Insert("stocks", []relation.Value{relation.Str(fmt.Sprintf("r%d", i)), relation.Float(1)}); err != nil {
			t.Fatal(err)
		}
		ts, err := tx.Commit()
		if err != nil {
			t.Fatal(err)
		}
		tss = append(tss, ts)
	}
	if lvl := s.Overload(); lvl != OverloadSoft {
		t.Fatalf("level = %v, want soft", lvl)
	}
	// Collect down to 7 rows: still soft (recovery needs <= 6 = 3/4 of 8).
	s.CollectGarbage(tss[0])
	if rows, _ := s.DeltaUsage(); rows != 7 {
		t.Fatalf("rows = %d", rows)
	}
	if lvl := s.Overload(); lvl != OverloadSoft {
		t.Fatalf("at 7 rows: level = %v, want soft (hysteresis)", lvl)
	}
	// Down to 6: recovery headroom reached, level clears.
	s.CollectGarbage(tss[1])
	if lvl := s.Overload(); lvl != OverloadNone {
		t.Fatalf("at 6 rows: level = %v, want none", lvl)
	}
}

func TestWatermarkPressureHookFiresPerTransition(t *testing.T) {
	s := newStockStore(t)
	levels := make(chan OverloadLevel, 8)
	s.SetPressureHook(func(l OverloadLevel) { levels <- l })
	s.SetWatermarks(Watermarks{SoftRows: 2, HardRows: 4})

	// Drive one transition at a time: hook invocations run on their own
	// goroutines, so concurrent transitions would arrive unordered.
	waitFor := func(want OverloadLevel) {
		t.Helper()
		select {
		case got := <-levels:
			if got != want {
				t.Fatalf("transition = %v, want %v", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("pressure hook never saw %v", want)
		}
	}
	_ = wmInsert(t, s, "r0")
	_ = wmInsert(t, s, "r1")
	waitFor(OverloadSoft)
	_ = wmInsert(t, s, "r2")
	_ = wmInsert(t, s, "r3")
	waitFor(OverloadHard)
	s.CollectGarbage(s.Now())
	waitFor(OverloadNone)
}

func TestWatermarkByteBound(t *testing.T) {
	s := newStockStore(t)
	s.SetWatermarks(Watermarks{SoftBytes: 1, HardBytes: 1 << 40})
	if err := wmInsert(t, s, "one"); err != nil {
		t.Fatal(err)
	}
	if lvl := s.Overload(); lvl != OverloadSoft {
		t.Fatalf("level = %v, want soft from byte bound", lvl)
	}
	_, bytes := s.DeltaUsage()
	if bytes <= 0 {
		t.Fatalf("DeltaUsage bytes = %d", bytes)
	}
}

func TestSetWatermarksRecomputesAgainstBacklog(t *testing.T) {
	s := newStockStore(t)
	for i := 0; i < 5; i++ {
		if err := wmInsert(t, s, fmt.Sprintf("r%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if lvl := s.Overload(); lvl != OverloadNone {
		t.Fatalf("unbounded store degraded: %v", lvl)
	}
	// Installing watermarks below the existing backlog trips immediately
	// (the recovery path: replay rebuilt retention before config landed).
	s.SetWatermarks(Watermarks{SoftRows: 2, HardRows: 4})
	if lvl := s.Overload(); lvl != OverloadHard {
		t.Fatalf("level = %v, want hard against backlog", lvl)
	}
	// Removing them clears degraded mode entirely.
	s.SetWatermarks(Watermarks{})
	if lvl := s.Overload(); lvl != OverloadNone {
		t.Fatalf("level after removal = %v", lvl)
	}
}
