package algebra

import (
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

func vecSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "n", Type: relation.TInt},
		relation.Column{Name: "x", Type: relation.TFloat},
		relation.Column{Name: "tag", Type: relation.TString},
		relation.Column{Name: "ok", Type: relation.TBool},
	)
}

func vecBatch(t *testing.T, rng *rand.Rand, rows int) *batch.Batch {
	t.Helper()
	schema := vecSchema()
	b := batch.New(schema, rows)
	tags := []string{"alpha", "beta", "gamma", ""}
	for i := 0; i < rows; i++ {
		vals := []relation.Value{
			relation.Int(rng.Int63n(100)),
			relation.Float(rng.Float64() * 10),
			relation.Str(tags[rng.Intn(len(tags))]),
			relation.Bool(rng.Intn(2) == 0),
		}
		for c := range vals {
			if rng.Intn(10) == 0 {
				vals[c] = relation.TypedNull(schema.Col(c).Type)
			}
		}
		sign := int8(1)
		if rng.Intn(2) == 0 {
			sign = -1
		}
		if !b.AppendRow(relation.TID(i), sign, vals) {
			t.Fatal("append")
		}
	}
	return b
}

// TestSelectBatchMatchesRowPath: for each predicate, the vectorized
// selection must agree row for row (and error for error) with the
// tuple-at-a-time EvalPredicate loop it replaces.
func TestSelectBatchMatchesRowPath(t *testing.T) {
	preds := []string{
		"n > 50",
		"n <= 10",
		"50 < n",
		"n = 7",
		"n != 7",
		"x < 5.0",
		"n > 2.5",
		"tag = 'alpha'",
		"tag != ''",
		"ok = TRUE",
		"n > 10 AND x < 8.0",
		"n > 10 AND x < 8.0 AND tag != 'beta'",
		"n > 80 OR x < 1.0",
		"NOT (ok = TRUE)",
		"n + 10 > 60",
		"ABS(n - 50) < 20",
		"tag = 'alpha' OR (n > 90 AND ok)",
		"n > NULL",
	}
	rng := rand.New(rand.NewSource(42))
	b := vecBatch(t, rng, 300)
	schema := vecSchema()
	scratch := make([]relation.Value, schema.Len())
	for _, src := range preds {
		expr, err := sql.ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ce, err := Compile(expr, schema)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// Row-path oracle.
		var want []int32
		var wantErr error
		for i := 0; i < b.Len(); i++ {
			b.ReadRow(i, scratch)
			ok, err := EvalPredicate(ce, relation.Tuple{TID: b.TIDs[i], Values: scratch})
			if err != nil {
				wantErr = err
				break
			}
			if ok {
				want = append(want, int32(i))
			}
		}
		got, gotErr := SelectBatch(ce, b, nil)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: row=%v vec=%v", src, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: row path selected %d, vec %d", src, len(want), len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: index %d: row %d vs vec %d", src, i, want[i], got[i])
			}
		}
	}
}

// TestSelectBatchErrors: the vec path surfaces the same type errors the
// row path raises.
func TestSelectBatchErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := vecBatch(t, rng, 10)
	for _, src := range []string{"tag > 5", "n AND ok", "tag + 1 > 0"} {
		expr, err := sql.ParseExpr(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		ce, err := Compile(expr, vecSchema())
		if err != nil {
			continue // compile-time rejection is fine too
		}
		if _, err := SelectBatch(ce, b, nil); err == nil {
			t.Fatalf("%s: expected evaluation error", src)
		}
	}
}

func TestColumnIndexOf(t *testing.T) {
	schema := vecSchema()
	expr, _ := sql.ParseExpr("tag")
	ce, err := Compile(expr, schema)
	if err != nil {
		t.Fatal(err)
	}
	if idx, ok := ColumnIndexOf(ce); !ok || idx != 2 {
		t.Fatalf("ColumnIndexOf = %d, %v", idx, ok)
	}
	expr, _ = sql.ParseExpr("tag != ''")
	ce, _ = Compile(expr, schema)
	if _, ok := ColumnIndexOf(ce); ok {
		t.Fatal("non-column expression reported as column")
	}
}
