// Command cqbench regenerates every experiment table in EXPERIMENTS.md.
//
//	cqbench            # run everything at paper scale
//	cqbench -quick     # small datasets (CI-sized)
//	cqbench -run E3,E5 # selected experiments
//	cqbench -list      # list experiment ids
//	cqbench -json out  # also write each table as out/BENCH_<ID>.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/diorama/continual/internal/bench"
	"github.com/diorama/continual/internal/obs"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cqbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cqbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use small datasets")
	list := fs.Bool("list", false, "list experiments and exit")
	runIDs := fs.String("run", "", "comma-separated experiment ids (default: all)")
	rows := fs.Int("rows", 0, "override base relation size")
	iters := fs.Int("iters", 0, "override measured iterations per point")
	stats := fs.Bool("stats", true, "print a metrics snapshot after each experiment")
	jsonDir := fs.String("json", "", "also write each table as BENCH_<ID>.json into this directory")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Desc)
		}
		return nil
	}

	scale := bench.Paper
	if *quick {
		scale = bench.Quick
	}
	if *rows > 0 {
		scale.BaseRows = *rows
	}
	if *iters > 0 {
		scale.Iterations = *iters
	}

	var selected []bench.Experiment
	if *runIDs == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := bench.Find(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("cqbench: %d experiments, base rows = %d, iterations = %d\n\n",
		len(selected), scale.BaseRows, scale.Iterations)
	for _, e := range selected {
		// Fresh registry per experiment so the printed snapshot covers
		// just that run.
		if *stats {
			scale.Metrics = obs.NewRegistry()
		}
		table, err := e.Run(scale)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		table.Render(os.Stdout)
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, table); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		if *stats {
			if snap := scale.Metrics.Snapshot(); !snap.Empty() {
				fmt.Printf("%s metrics:\n", e.ID)
				snap.WriteTable(os.Stdout)
				fmt.Println()
			}
		}
	}
	return nil
}

// writeJSON stores one experiment table as <dir>/BENCH_<ID>.json.
func writeJSON(dir string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "BENCH_"+t.ID+".json"))
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
