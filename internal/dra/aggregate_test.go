package dra

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/relation"
)

func accountsFixture(t *testing.T) *fixture {
	t.Helper()
	return newFixture(t, map[string]relation.Schema{"accounts": relation.MustSchema(
		relation.Column{Name: "owner", Type: relation.TString},
		relation.Column{Name: "amount", Type: relation.TFloat},
		relation.Column{Name: "branch", Type: relation.TString},
	)})
}

func av(owner string, amount float64, branch string) []relation.Value {
	return []relation.Value{relation.Str(owner), relation.Float(amount), relation.Str(branch)}
}

func newIncAgg(t *testing.T, f *fixture, query string) (*IncrementalAggregate, algebra.Plan) {
	t.Helper()
	plan := f.plan(t, query)
	ia, err := NewIncrementalAggregate(NewEngine(), plan, f.store.Live())
	if err != nil {
		t.Fatalf("NewIncrementalAggregate: %v", err)
	}
	return ia, plan
}

// step folds the pending window and checks the maintained output equals
// a fresh full execution.
func stepAndVerify(t *testing.T, f *fixture, ia *IncrementalAggregate, plan algebra.Plan) *Result {
	t.Helper()
	ctx := f.ctx(t)
	res, err := ia.Step(ctx, f.store.Now())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	f.mark()
	want, err := algebra.NewExecutor(f.store.Live()).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !aggEqual(ia.Result(), want) {
		t.Fatalf("incremental aggregate diverged.\nmaintained:\n%s\nfresh:\n%s", ia.Result(), want)
	}
	return res
}

// aggEqual compares aggregate outputs by group key with float tolerance.
func aggEqual(a, b *relation.Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	for _, t := range a.Tuples() {
		bt, ok := b.Lookup(t.TID)
		if !ok {
			return false
		}
		for i := range t.Values {
			av, bv := t.Values[i], bt.Values[i]
			if av.IsNull() != bv.IsNull() {
				return false
			}
			if av.IsNull() {
				continue
			}
			if av.IsNumeric() && bv.IsNumeric() {
				if !approxEqual(av.AsFloat(), bv.AsFloat(), 1e-6) {
					return false
				}
				continue
			}
			if !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}

// TestIncrementalBankSum maintains the paper's checking-account sum
// through deposits, withdrawals and in-place corrections.
func TestIncrementalBankSum(t *testing.T) {
	f := accountsFixture(t)
	tids := f.insert(t, "accounts", av("alice", 100, "n"), av("bob", 200, "n"))
	ia, plan := newIncAgg(t, f, "SELECT SUM(amount) AS total, COUNT(*) AS n FROM accounts")
	f.mark()

	got := ia.Result()
	if got.At(0).Values[0].AsFloat() != 300 || got.At(0).Values[1].AsInt() != 2 {
		t.Fatalf("initial = %v", got.At(0).Values)
	}

	// Deposit.
	f.insert(t, "accounts", av("carol", 50, "s"))
	res := stepAndVerify(t, f, ia, plan)
	if len(res.Modified()) != 1 {
		t.Errorf("sum change should be one modification, got %+v", res.Delta.Rows())
	}
	if ia.Result().At(0).Values[0].AsFloat() != 350 {
		t.Errorf("after deposit = %v", ia.Result().At(0).Values)
	}

	// Withdrawal (delete) + correction (modify).
	tx := f.store.Begin()
	_ = tx.Delete("accounts", tids[0])
	_ = tx.Update("accounts", tids[1], av("bob", 210, "n"))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res = stepAndVerify(t, f, ia, plan)
	if ia.Result().At(0).Values[0].AsFloat() != 260 {
		t.Errorf("after withdrawal+correction = %v", ia.Result().At(0).Values)
	}
	// The engine never scanned base data for this step.
	if res.Stats.PreTuplesScanned != 0 {
		t.Errorf("incremental aggregate scanned %d pre tuples", res.Stats.PreTuplesScanned)
	}
}

func TestIncrementalGlobalEmptiesToNull(t *testing.T) {
	f := accountsFixture(t)
	tids := f.insert(t, "accounts", av("a", 10, "n"))
	ia, plan := newIncAgg(t, f, "SELECT SUM(amount) AS total, COUNT(*) AS n, AVG(amount) AS a FROM accounts")
	f.mark()

	tx := f.store.Begin()
	_ = tx.Delete("accounts", tids[0])
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	stepAndVerify(t, f, ia, plan)
	vals := ia.Result().At(0).Values
	if !vals[0].IsNull() || vals[1].AsInt() != 0 || !vals[2].IsNull() {
		t.Errorf("empty-table aggregates = %v, want NULL/0/NULL", vals)
	}
}

func TestIncrementalGroupByAppearsAndDisappears(t *testing.T) {
	f := accountsFixture(t)
	f.insert(t, "accounts", av("a", 10, "north"), av("b", 20, "north"))
	ia, plan := newIncAgg(t, f, "SELECT branch, SUM(amount) AS total FROM accounts GROUP BY branch")
	f.mark()
	if ia.Result().Len() != 1 {
		t.Fatalf("initial groups = %d", ia.Result().Len())
	}

	// New group appears.
	southTIDs := f.insert(t, "accounts", av("c", 5, "south"))
	res := stepAndVerify(t, f, ia, plan)
	if res.Inserted().Len() != 1 {
		t.Errorf("new group should be an insertion, got %+v", res.Delta.Rows())
	}
	if ia.Result().Len() != 2 {
		t.Fatalf("groups = %d", ia.Result().Len())
	}

	// Group disappears when its last row goes.
	tx := f.store.Begin()
	_ = tx.Delete("accounts", southTIDs[0])
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res = stepAndVerify(t, f, ia, plan)
	if res.Deleted().Len() != 1 {
		t.Errorf("vanished group should be a deletion, got %+v", res.Delta.Rows())
	}
	if ia.Result().Len() != 1 {
		t.Errorf("groups = %d", ia.Result().Len())
	}
}

func TestIncrementalWithSelectionInput(t *testing.T) {
	f := accountsFixture(t)
	f.insert(t, "accounts", av("a", 100, "n"), av("b", 5, "n"))
	ia, plan := newIncAgg(t, f, "SELECT COUNT(*) AS big FROM accounts WHERE amount > 50")
	f.mark()
	if ia.Result().At(0).Values[0].AsInt() != 1 {
		t.Fatalf("initial = %v", ia.Result().At(0).Values)
	}
	// Insert below the predicate: irrelevant to the aggregate.
	f.insert(t, "accounts", av("c", 1, "n"))
	res := stepAndVerify(t, f, ia, plan)
	if res.Delta.Len() != 0 {
		t.Errorf("irrelevant insert changed the aggregate: %+v", res.Delta.Rows())
	}
	// Insert above it.
	f.insert(t, "accounts", av("d", 500, "n"))
	stepAndVerify(t, f, ia, plan)
	if ia.Result().At(0).Values[0].AsInt() != 2 {
		t.Errorf("count = %v", ia.Result().At(0).Values)
	}
}

func TestNotIncrementalCases(t *testing.T) {
	f := accountsFixture(t)
	f.insert(t, "accounts", av("a", 1, "n"))
	cases := []string{
		"SELECT MIN(amount) AS lo FROM accounts",
		"SELECT MAX(amount) AS hi FROM accounts",
		"SELECT branch, SUM(amount) AS s FROM accounts GROUP BY branch HAVING SUM(amount) > 10",
		"SELECT * FROM accounts", // not an aggregate root
	}
	for _, q := range cases {
		plan := f.plan(t, q)
		if _, err := NewIncrementalAggregate(NewEngine(), plan, f.store.Live()); !errors.Is(err, ErrNotIncremental) {
			t.Errorf("%q: err = %v, want ErrNotIncremental", q, err)
		}
	}
}

// Property: the maintained aggregate equals fresh execution over long
// random update streams, for global and grouped shapes.
func TestIncrementalAggregateEquivalenceProperty(t *testing.T) {
	queries := []string{
		"SELECT SUM(amount) AS total, COUNT(*) AS n, AVG(amount) AS a FROM accounts",
		"SELECT branch, SUM(amount) AS total, COUNT(*) AS n FROM accounts GROUP BY branch",
		"SELECT branch, COUNT(*) AS n FROM accounts WHERE amount > 50 GROUP BY branch",
	}
	branches := []string{"n", "s", "e", "w"}
	for qi, q := range queries {
		rng := rand.New(rand.NewSource(int64(qi + 77)))
		f := accountsFixture(t)
		var live []relation.TID
		// Seed.
		tx := f.store.Begin()
		for i := 0; i < 30; i++ {
			tid, err := tx.Insert("accounts", av("x", float64(rng.Intn(200)), branches[rng.Intn(4)]))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, tid)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		ia, plan := newIncAgg(t, f, q)
		f.mark()

		for round := 0; round < 15; round++ {
			tx := f.store.Begin()
			for op := 0; op < 5; op++ {
				switch k := rng.Intn(3); {
				case k == 0 || len(live) == 0:
					tid, err := tx.Insert("accounts", av("x", float64(rng.Intn(200)), branches[rng.Intn(4)]))
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, tid)
				case k == 1:
					i := rng.Intn(len(live))
					if err := tx.Update("accounts", live[i], av("x", float64(rng.Intn(200)), branches[rng.Intn(4)])); err != nil {
						t.Fatal(err)
					}
				default:
					i := rng.Intn(len(live))
					if err := tx.Delete("accounts", live[i]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:i], live[i+1:]...)
				}
			}
			if _, err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			stepAndVerify(t, f, ia, plan) // asserts vs fresh execution
		}
	}
}
