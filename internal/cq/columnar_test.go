package cq

import (
	"fmt"
	"testing"

	"github.com/diorama/continual/internal/dra"
)

// TestColumnarRowEquivalence is the end-to-end transcript property for
// the vectorized refresh path: the same commit script must yield
// byte-identical per-CQ notification sequences whether the engine
// evaluates row-at-a-time or through the columnar kernels — across the
// poll, push, and overflow-mixed drive modes, with and without
// template sharing. Run with -race this also exercises the shared
// read-only batch images (window cache entries and routed commit
// batches) under concurrent refresh workers.
func TestColumnarRowEquivalence(t *testing.T) {
	const steps = 36
	for _, share := range []bool{false, true} {
		for _, mode := range []string{"poll", "push", "mixed"} {
			t.Run(fmt.Sprintf("share=%v/%s", share, mode), func(t *testing.T) {
				rowEng := dra.NewEngine()
				rowEng.Vectorized = false
				base, _ := e2eWorldCfg(t, mode, steps, func(c *Config) {
					c.Engine = rowEng
					c.ShareTemplates = share
				})
				for _, name := range []string{"sel", "join", "upd3", "compl"} {
					if len(base[name]) == 0 {
						t.Fatalf("row transcript for %q is empty; the script is too tame", name)
					}
				}

				vec, snap := e2eWorldCfg(t, mode, steps, func(c *Config) {
					c.Engine = dra.NewEngine() // Vectorized on by default
					c.ShareTemplates = share
				})
				if snap.Counter("dra.vector_steps") == 0 {
					t.Fatal("columnar world never took the vectorized path; the property holds vacuously")
				}
				if mode == "push" && !share && snap.Counter("cq.columnar.pushed") == 0 {
					t.Fatal("push mode never consumed a routed commit image; the zero-conversion path went unexercised")
				}

				for name, want := range base {
					got := vec[name]
					if len(got) != len(want) {
						t.Fatalf("%q delivered %d notifications columnar, %d row",
							name, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("%q notification %d:\n  row: %s\n  col: %s",
								name, i, want[i], got[i])
						}
					}
				}
			})
		}
	}
}
