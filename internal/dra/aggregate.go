package dra

import (
	"errors"
	"fmt"
	"math"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// This file extends the paper's SPJ-only Algorithm 1 to aggregate
// queries. Section 5.3 already evaluates aggregate *trigger conditions*
// differentially by keeping running sums over the differential relation
// (Deposits / Withdrawals); IncrementalAggregate applies the same idea to
// the query result itself: per-group counts and sums are maintained as
// auxiliary state, folded forward by the signed delta of the aggregate's
// input subplan, so refreshing SELECT SUM(amount) FROM CheckingAccounts
// costs O(|Δ|) instead of a base scan.
//
// Supported: root-level AggregatePlan with SUM / COUNT / COUNT(*) / AVG
// aggregates and no HAVING clause. MIN and MAX are not incrementally
// maintainable from counts alone (a deletion of the current extremum
// needs the base data) and report ErrNotIncremental, as does HAVING; the
// caller falls back to Propagate.

// ErrNotIncremental reports that a plan cannot be maintained
// incrementally and the caller should use the Propagate fallback.
var ErrNotIncremental = errors.New("dra: plan is not incrementally maintainable")

// groupState is the auxiliary state of one group.
type groupState struct {
	key []relation.Value
	// rows is the signed count of input rows in the group (group
	// existence).
	rows int64
	// counts[i] is the signed count of non-null aggregate arguments.
	counts []int64
	// sumF[i] / sumI[i] accumulate the argument values.
	sumF []float64
	sumI []int64
}

// IncrementalAggregate maintains an aggregate query's result across
// refreshes.
type IncrementalAggregate struct {
	plan   *algebra.AggregatePlan
	input  *compiledNode // compiled SPJ input, built once at construction
	engine *Engine

	groupEx []algebra.CompiledExpr
	argEx   []algebra.CompiledExpr // nil for COUNT(*)

	groups map[uint64]*groupState
	out    *relation.Relation // current output
}

// NewIncrementalAggregate validates the plan and builds the initial
// state from the current source contents. The plan must be the root of
// the query.
func NewIncrementalAggregate(engine *Engine, plan algebra.Plan, src algebra.Source) (*IncrementalAggregate, error) {
	agg, ok := plan.(*algebra.AggregatePlan)
	if !ok {
		return nil, fmt.Errorf("%w: root is %T", ErrNotIncremental, plan)
	}
	if agg.Having != nil {
		return nil, fmt.Errorf("%w: HAVING requires group recomputation", ErrNotIncremental)
	}
	if !supportsDifferential(agg.Input) {
		return nil, fmt.Errorf("%w: input is not SPJ", ErrNotIncremental)
	}
	for _, a := range agg.Aggs {
		switch a.Func {
		case "SUM", "COUNT", "AVG":
		default:
			return nil, fmt.Errorf("%w: %s needs base access on deletions", ErrNotIncremental, a.Func)
		}
	}

	ia := &IncrementalAggregate{
		plan:   agg,
		engine: engine,
		groups: make(map[uint64]*groupState),
	}
	in, err := compilePlan(agg.Input)
	if err != nil {
		return nil, err
	}
	ia.input = in
	inSchema := agg.Input.Schema()
	for _, g := range agg.GroupBy {
		ce, err := algebra.Compile(g.Expr, inSchema)
		if err != nil {
			return nil, err
		}
		ia.groupEx = append(ia.groupEx, ce)
	}
	for _, a := range agg.Aggs {
		if a.Arg == nil {
			ia.argEx = append(ia.argEx, nil)
			continue
		}
		ce, err := algebra.Compile(a.Arg, inSchema)
		if err != nil {
			return nil, err
		}
		ia.argEx = append(ia.argEx, ce)
	}

	// Seed the state from the initial input contents.
	input, err := algebra.NewExecutor(src).Execute(agg.Input)
	if err != nil {
		return nil, err
	}
	for _, t := range input.Tuples() {
		if err := ia.fold(t, +1); err != nil {
			return nil, err
		}
	}
	ia.out, err = ia.materialize()
	if err != nil {
		return nil, err
	}
	return ia, nil
}

// Result returns the maintained aggregate output. Callers must not
// mutate it.
func (ia *IncrementalAggregate) Result() *relation.Relation { return ia.out }

// fold accumulates one input row with the given sign.
func (ia *IncrementalAggregate) fold(t relation.Tuple, sign int) error {
	key := make([]relation.Value, len(ia.groupEx))
	for i, ge := range ia.groupEx {
		v, err := ge.Eval(t)
		if err != nil {
			return fmt.Errorf("dra: aggregate group key: %w", err)
		}
		key[i] = v
	}
	h := relation.HashValues(key)
	g, ok := ia.groups[h]
	if !ok {
		g = &groupState{
			key:    key,
			counts: make([]int64, len(ia.argEx)),
			sumF:   make([]float64, len(ia.argEx)),
			sumI:   make([]int64, len(ia.argEx)),
		}
		ia.groups[h] = g
	}
	g.rows += int64(sign)
	for i, ae := range ia.argEx {
		if ae == nil { // COUNT(*)
			g.counts[i] += int64(sign)
			continue
		}
		v, err := ae.Eval(t)
		if err != nil {
			return fmt.Errorf("dra: aggregate argument: %w", err)
		}
		if v.IsNull() {
			continue
		}
		g.counts[i] += int64(sign)
		g.sumF[i] += float64(sign) * v.AsFloat()
		if v.Kind == relation.TInt {
			g.sumI[i] += int64(sign) * v.AsInt()
		} else {
			// A float contribution poisons the integer accumulator; SUM
			// output type is already TFloat for float inputs.
			g.sumI[i] = 0
		}
	}
	if g.rows == 0 && len(ia.groupEx) > 0 {
		delete(ia.groups, h)
	}
	return nil
}

// materialize renders the current state as the aggregate output
// relation, mirroring the executor's semantics (COUNT over empty = 0,
// SUM/AVG over empty = NULL; a global aggregate always emits one row).
func (ia *IncrementalAggregate) materialize() (*relation.Relation, error) {
	out := relation.New(ia.plan.Schema())
	emit := func(g *groupState) error {
		vals := make([]relation.Value, 0, len(g.key)+len(ia.plan.Aggs))
		vals = append(vals, g.key...)
		for i, a := range ia.plan.Aggs {
			outType := ia.plan.Schema().Col(len(g.key) + i).Type
			switch a.Func {
			case "COUNT":
				vals = append(vals, relation.Int(g.counts[i]))
			case "SUM":
				if g.counts[i] == 0 {
					vals = append(vals, relation.TypedNull(outType))
				} else if outType == relation.TInt {
					vals = append(vals, relation.Int(g.sumI[i]))
				} else {
					vals = append(vals, relation.Float(g.sumF[i]))
				}
			case "AVG":
				if g.counts[i] == 0 {
					vals = append(vals, relation.TypedNull(relation.TFloat))
				} else {
					vals = append(vals, relation.Float(g.sumF[i]/float64(g.counts[i])))
				}
			}
		}
		tid := relation.HashTID(g.key)
		if len(ia.groupEx) == 0 {
			tid = 1
		}
		return out.Insert(relation.Tuple{TID: tid, Values: vals})
	}
	if len(ia.groupEx) == 0 {
		g, ok := ia.groups[relation.HashValues(nil)]
		if !ok {
			g = &groupState{
				counts: make([]int64, len(ia.argEx)),
				sumF:   make([]float64, len(ia.argEx)),
				sumI:   make([]int64, len(ia.argEx)),
			}
		}
		if err := emit(g); err != nil {
			return nil, err
		}
		return out, nil
	}
	for _, g := range ia.groups {
		if g.rows <= 0 {
			continue
		}
		if err := emit(g); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Step folds the update window into the state and returns the result
// change and the new output. The input subplan's signed delta is
// computed by the engine's differential machinery, so the cost is
// O(|Δ|) for select-only inputs.
func (ia *IncrementalAggregate) Step(ctx *Context, execTS vclock.Timestamp) (*Result, error) {
	var st Stats
	din, err := ia.engine.signedDelta(ia.input, ctx, execTS, &st)
	if err != nil {
		return nil, err
	}
	for _, r := range din.Rows {
		if err := ia.fold(relation.Tuple{TID: r.TID, Values: r.Values}, r.Sign); err != nil {
			return nil, err
		}
	}
	next, err := ia.materialize()
	if err != nil {
		return nil, err
	}
	d, err := delta.Diff(ia.out, next, execTS)
	if err != nil {
		return nil, err
	}
	ia.out = next
	res := &Result{
		Signed: &delta.Signed{Schema: ia.plan.Schema(), Rows: d.ToSigned().Rows},
		Delta:  d,
		ExecTS: execTS,
		Stats:  st,
	}
	res.materialized = next
	return res, nil
}

// approxEqual helps the tests compare float aggregates with tolerance.
func approxEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }
