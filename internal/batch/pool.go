package batch

import (
	"sync"

	"github.com/diorama/continual/internal/relation"
)

// Pool is the arena that recycles batch and selection buffers across
// refresh rounds. A nil *Pool is valid and degrades to plain allocation
// (Get allocates, Put discards), so cold paths and tests can pass nil.
//
// Lifecycle contract: a batch obtained from Get is owned by the caller
// until it is passed to Put, after which the caller must not touch it
// again — not even Len. In race/poison builds Put bumps the batch's
// generation counter and marks it dead, and every subsequent accessor
// panics, so use-after-release is a loud CI failure rather than a
// silent read of recycled memory. Buffers marked Shared (views, stolen
// columns) are dropped at Put, never recycled, because another batch
// still references them.
type Pool struct {
	batches sync.Pool
	idx     sync.Pool
	tids    sync.Pool
}

// NewPool returns an empty arena.
func NewPool() *Pool { return &Pool{} }

// Get returns an empty batch shaped for the schema, possibly carrying
// recycled buffer capacity from earlier rounds.
func (p *Pool) Get(schema relation.Schema, capHint int) *Batch {
	if p == nil {
		return New(schema, capHint)
	}
	b, _ := p.batches.Get().(*Batch)
	if b == nil {
		return New(schema, capHint)
	}
	b.dead = false
	b.init(schema, capHint)
	return b
}

// Put returns a batch to the arena. Shared buffers (views, stolen
// columns, aliased row metadata) are detached rather than recycled.
// Safe on nil pools and nil batches.
func (b *Batch) release() {
	b.dead = true
	b.gen++
	for i := range b.Cols {
		if b.Cols[i].Shared {
			b.Cols[i] = Col{Type: b.Cols[i].Type}
		}
	}
	if b.sharedRows {
		b.TIDs = nil
		b.Signs = nil
		b.TS = nil
		b.sharedRows = false
	}
}

// Put returns a batch to the arena for reuse. The batch must not be
// referenced afterward (see the Pool lifecycle contract).
func (p *Pool) Put(b *Batch) {
	if b == nil {
		return
	}
	if poisonEnabled && b.dead {
		panic("batch: double Put (poisoned generation)")
	}
	b.release()
	if p == nil {
		return
	}
	// released: buffers recycled into the arena; callers hold no refs.
	p.batches.Put(b)
}

// GetIdx returns an empty selection-index buffer with at least capHint
// capacity.
func (p *Pool) GetIdx(capHint int) []int32 {
	if p != nil {
		if v, _ := p.idx.Get().(*[]int32); v != nil {
			return (*v)[:0]
		}
	}
	return make([]int32, 0, capHint)
}

// PutIdx recycles a selection-index buffer obtained from GetIdx.
func (p *Pool) PutIdx(s []int32) {
	if p == nil || s == nil {
		return
	}
	s = s[:0]
	// released: index buffer recycled; selection already consumed.
	p.idx.Put(&s)
}

// GetTIDs returns an empty TID scratch buffer.
func (p *Pool) GetTIDs(capHint int) []relation.TID {
	if p != nil {
		if v, _ := p.tids.Get().(*[]relation.TID); v != nil {
			return (*v)[:0]
		}
	}
	return make([]relation.TID, 0, capHint)
}

// PutTIDs recycles a TID scratch buffer obtained from GetTIDs.
func (p *Pool) PutTIDs(s []relation.TID) {
	if p == nil || s == nil {
		return
	}
	s = s[:0]
	// released: tid scratch recycled; provenance already folded.
	p.tids.Put(&s)
}
