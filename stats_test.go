package continual_test

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	continual "github.com/diorama/continual"
	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
)

// statsWorkload drives the quick-start script plus a join CQ through a
// DB so every subsystem emits metrics.
func statsWorkload(t *testing.T) *continual.DB {
	t.Helper()
	db := continual.Open()
	t.Cleanup(func() { _ = db.Close() })
	for _, stmt := range []string{
		`CREATE TABLE stocks (name STRING, price FLOAT)`,
		`CREATE TABLE sectors (name STRING, sector STRING)`,
		`INSERT INTO stocks VALUES ('DEC', 150), ('IBM', 75)`,
		`INSERT INTO sectors VALUES ('DEC', 'tech'), ('IBM', 'tech')`,
	} {
		if err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if _, err := db.Register("expensive", `SELECT * FROM stocks WHERE price > 120`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Register("sector_join", `SELECT * FROM stocks JOIN sectors ON stocks.name = sectors.name`); err != nil {
		t.Fatal(err)
	}
	for _, stmt := range []string{
		`INSERT INTO stocks VALUES ('MAC', 130)`,
		`INSERT INTO sectors VALUES ('MAC', 'tech')`,
	} {
		if err := db.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if n := db.Poll(); n == 0 {
		t.Fatal("Poll refreshed nothing")
	}
	return db
}

func TestStatsEndToEnd(t *testing.T) {
	db := statsWorkload(t)
	s := db.Stats()

	for name, min := range map[string]int64{
		"dra.reevaluations":       1,
		"dra.terms_evaluated":     1,
		"dra.delta_rows_consumed": 1,
		"cq.polls":                1,
		"cq.refreshes":            2,
		"cq.trigger_evals":        2,
		"storage.commits":         4,
	} {
		if got := s.Counter(name); got < min {
			t.Errorf("%s = %d, want >= %d", name, got, min)
		}
	}
	if got := s.Gauge("cq.registered"); got != 2 {
		t.Errorf("cq.registered = %d, want 2", got)
	}

	// Internal consistency: every refresh runs exactly one differential
	// re-evaluation, and the re-evaluations split across the three paths.
	if re, ref := s.Counter("dra.reevaluations"), s.Counter("cq.refreshes"); re != ref {
		t.Errorf("dra.reevaluations = %d but cq.refreshes = %d", re, ref)
	}
	paths := s.Counter("dra.differential_path") + s.Counter("dra.fallback_path") + s.Counter("dra.skipped")
	if paths != s.Counter("dra.reevaluations") {
		t.Errorf("path counters sum to %d, want %d", paths, s.Counter("dra.reevaluations"))
	}
	// The total delta-log gauge is the sum of the per-table gauges.
	perTable := s.Gauge("storage.delta_len.stocks") + s.Gauge("storage.delta_len.sectors")
	if total := s.Gauge("storage.delta_len"); total != perTable {
		t.Errorf("storage.delta_len = %d, per-table sum = %d", total, perTable)
	}
	if got := s.Latencies["dra.reevaluate_ns"].Count; got < 1 {
		t.Errorf("dra.reevaluate_ns count = %d, want >= 1", got)
	}
	if got := s.Latencies["cq.refresh_ns"].Count; got < 1 {
		t.Errorf("cq.refresh_ns count = %d, want >= 1", got)
	}

	var table strings.Builder
	db.WriteStats(&table)
	for _, want := range []string{"counters", "gauges", "latencies", "dra.terms_evaluated"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("WriteStats output missing %q", want)
		}
	}
}

func TestStatsHTTPEndpoints(t *testing.T) {
	db := statsWorkload(t)
	srv := httptest.NewServer(db.StatsHandler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var served continual.Stats
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	if served.Counter("dra.terms_evaluated") < 1 {
		t.Errorf("/stats dra.terms_evaluated = %d, want >= 1", served.Counter("dra.terms_evaluated"))
	}
	// The HTTP view and the in-process view are the same registry.
	if a, b := served.Counter("cq.refreshes"), db.Stats().Counter("cq.refreshes"); a != b {
		t.Errorf("/stats cq.refreshes = %d, DB.Stats = %d", a, b)
	}

	tr, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	body, _ := io.ReadAll(tr.Body)
	if !strings.Contains(string(body), "cq.refresh:") {
		t.Errorf("/debug/traces missing refresh spans:\n%s", body)
	}
}

// TestStatsMatchTableDeltaLen runs a scripted workload against an
// instrumented store+manager pair and checks the storage.delta_len
// gauges against the Table accessors the snapshot claims to mirror.
func TestStatsMatchTableDeltaLen(t *testing.T) {
	store := storage.NewStore()
	reg := obs.NewRegistry()
	store.Instrument(reg)
	schema := relation.MustSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
	if err := store.CreateTable("stocks", schema); err != nil {
		t.Fatal(err)
	}
	mgr := cq.NewManagerConfig(store, cq.Config{UseDRA: true, AutoGC: true, Metrics: reg})
	defer func() { _ = mgr.Close() }()
	if _, err := mgr.Register(cq.Def{Name: "all", Query: "SELECT * FROM stocks"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := store.Begin()
		if _, err := tx.Insert("stocks", []relation.Value{relation.Str("X"), relation.Float(float64(i))}); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Poll(); err != nil {
			t.Fatal(err)
		}
	}

	tbl, err := store.Table("stocks")
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got, want := snap.Gauge("storage.delta_len.stocks"), int64(tbl.DeltaLen()); got != want {
		t.Errorf("storage.delta_len.stocks = %d, Table.DeltaLen() = %d", got, want)
	}
	if got, want := snap.Gauge("storage.delta_len"), int64(tbl.DeltaLen()); got != want {
		t.Errorf("storage.delta_len = %d, Table.DeltaLen() = %d", got, want)
	}
	// AutoGC ran at the manager's horizon; LowWater must not exceed the
	// slowest CQ's last refresh (which is at most the current clock).
	if lw := tbl.LowWater(); lw > store.Now() {
		t.Errorf("LowWater %d beyond clock %d", lw, store.Now())
	}
}
