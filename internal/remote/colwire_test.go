package remote

import (
	"bytes"
	"testing"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
)

func colSchema(t testing.TB) relation.Schema {
	t.Helper()
	sc, err := relation.NewSchema(
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
		relation.Column{Name: "lot", Type: relation.TInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestColDeltaRoundTrip: a window with inserts, deletes, modifications
// and typed NULLs survives the columnar wire form exactly.
func TestColDeltaRoundTrip(t *testing.T) {
	sc := colSchema(t)
	d := delta.New(sc)
	mustAppend := func(r delta.Row) {
		t.Helper()
		if err := d.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	row := func(name string, price float64, lot int64) []relation.Value {
		return []relation.Value{relation.Str(name), relation.Float(price), relation.Int(lot)}
	}
	nullRow := []relation.Value{
		relation.Str("N"), relation.TypedNull(relation.TFloat), relation.TypedNull(relation.TInt),
	}
	mustAppend(delta.Row{TID: 1, New: row("DEC", 150, 10), TS: 1})
	mustAppend(delta.Row{TID: 2, New: nullRow, TS: 1})
	mustAppend(delta.Row{TID: 1, Old: row("DEC", 150, 10), New: row("DEC", 160, 10), TS: 2})
	mustAppend(delta.Row{TID: 2, Old: nullRow, TS: 3})

	w, ok := toWireColDelta(d)
	if !ok {
		t.Fatal("representable window reported unrepresentable")
	}
	// The wire form must survive the gob codec, not just the in-memory
	// struct.
	frames := encodeFrames(t, Response{ColDelta: w, Now: 3})
	recv := newCodec(&rwBuf{in: *bytes.NewBuffer(frames)})
	var resp Response
	if err := recv.recv(&resp); err != nil {
		t.Fatal(err)
	}
	got, err := fromWireColDelta(resp.ColDelta, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), d.Len())
	}
	for i, want := range d.Rows() {
		g := got.Rows()[i]
		if g.TID != want.TID || g.TS != want.TS || g.Kind() != want.Kind() {
			t.Fatalf("row %d: got %+v want %+v", i, g, want)
		}
		for c := range want.New {
			if !g.New[c].Equal(want.New[c]) {
				t.Fatalf("row %d new col %d: got %v want %v", i, c, g.New[c], want.New[c])
			}
		}
		for c := range want.Old {
			if !g.Old[c].Equal(want.Old[c]) {
				t.Fatalf("row %d old col %d: got %v want %v", i, c, g.Old[c], want.Old[c])
			}
		}
	}
}

// TestColDeltaUnrepresentable: kind drift forces the row form.
func TestColDeltaUnrepresentable(t *testing.T) {
	sc := colSchema(t)
	d := delta.New(sc)
	if err := d.Append(delta.Row{TID: 1, TS: 1, New: []relation.Value{
		relation.Str("DEC"), relation.Str("oops"), relation.Int(1),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := toWireColDelta(d); ok {
		t.Fatal("kind-drifted window must be unrepresentable")
	}
}

// TestColDeltaRejectsMalformedFrames: shape defects must error, never
// panic or misdecode.
func TestColDeltaRejectsMalformedFrames(t *testing.T) {
	sc := colSchema(t)
	base := func() *WireColDelta {
		return &WireColDelta{
			TIDs:  []uint64{1},
			Signs: []int8{1},
			TS:    []uint64{1},
			Cols: []WireCol{
				{Type: int(relation.TString), Str: []string{"DEC"}},
				{Type: int(relation.TFloat), F64: []float64{150}},
				{Type: int(relation.TInt), I64: []int64{10}},
			},
		}
	}
	cases := map[string]func(*WireColDelta){
		"sign length":    func(w *WireColDelta) { w.Signs = nil },
		"ts length":      func(w *WireColDelta) { w.TS = []uint64{1, 2} },
		"column count":   func(w *WireColDelta) { w.Cols = w.Cols[:2] },
		"column type":    func(w *WireColDelta) { w.Cols[1].Type = int(relation.TInt) },
		"payload length": func(w *WireColDelta) { w.Cols[0].Str = nil },
		"bad sign":       func(w *WireColDelta) { w.Signs[0] = 0 },
		"short bitmap":   func(w *WireColDelta) { w.Cols[0].Valid = []uint64{} },
		"unknown type": func(w *WireColDelta) {
			w.Cols[0].Type = 99
			w.Cols[0].Str = nil
		},
	}
	for name, breakIt := range cases {
		w := base()
		breakIt(w)
		if name == "short bitmap" {
			// An empty-but-non-nil bitmap means all-valid; use a 65-row
			// frame with a one-word bitmap instead.
			w = base()
			n := 65
			w.TIDs = make([]uint64, n)
			w.Signs = make([]int8, n)
			w.TS = make([]uint64, n)
			for i := range w.TIDs {
				w.TIDs[i] = uint64(i + 1)
				w.Signs[i] = 1
				w.TS[i] = uint64(i + 1)
			}
			w.Cols[0].Str = make([]string, n)
			w.Cols[1].F64 = make([]float64, n)
			w.Cols[2].I64 = make([]int64, n)
			w.Cols[0].Valid = []uint64{^uint64(0)} // needs 2 words for 65 rows
		}
		if _, err := fromWireColDelta(w, sc); err == nil {
			t.Errorf("%s: malformed frame accepted", name)
		}
	}
}

// FuzzColDelta throws arbitrary columnar frames at the decoder through
// the real codec: like FuzzCodecRecv it must error or decode cleanly,
// never panic. Well-formed frames additionally round-trip.
func FuzzColDelta(f *testing.F) {
	var seedT testing.T
	sc := colSchema(&seedT)
	d := delta.New(sc)
	_ = d.Append(delta.Row{TID: 1, TS: 1, New: []relation.Value{
		relation.Str("DEC"), relation.Float(150), relation.Int(10),
	}})
	if w, ok := toWireColDelta(d); ok {
		f.Add(encodeFrames(&seedT, Response{ColDelta: w}))
	}
	f.Add(encodeFrames(&seedT, Response{ColDelta: &WireColDelta{
		TIDs: []uint64{1}, Signs: []int8{2}, TS: []uint64{0},
	}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := newCodec(&rwBuf{in: *bytes.NewBuffer(data)})
		var resp Response
		if err := c.recv(&resp); err != nil {
			return
		}
		if resp.ColDelta == nil {
			return
		}
		got, err := fromWireColDelta(resp.ColDelta, sc)
		if err != nil {
			return
		}
		// Anything the decoder accepts must re-encode and decode to the
		// same window.
		w2, ok := toWireColDelta(got)
		if !ok {
			t.Fatal("accepted frame no longer representable")
		}
		got2, err := fromWireColDelta(w2, sc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if got2.Len() != got.Len() {
			t.Fatalf("round trip changed row count: %d vs %d", got2.Len(), got.Len())
		}
	})
}

// TestClientDecodesColumnarWindow: end to end over a real connection,
// the client's DeltaSince must arrive through the columnar form and
// match what the server committed.
func TestClientDecodesColumnarWindow(t *testing.T) {
	store, _, c := startServer(t)

	t0 := store.Now()
	insertStock(t, store, "DEC", 150)

	d, _, err := c.DeltaSince("stocks", t0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 || d.Rows()[0].Kind() != delta.Insert {
		t.Fatalf("window = %v, want one insert", d.Rows())
	}
	if !d.Rows()[0].New[1].Equal(relation.Float(150)) {
		t.Fatalf("price = %v, want 150", d.Rows()[0].New[1])
	}
}
