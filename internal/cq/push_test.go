package cq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/workload"
)

// renderRel canonicalizes a relation for transcript comparison: rows
// sorted, TIDs included (TID allocation is deterministic, so identical
// commit sequences must produce identical TIDs).
func renderRel(r *relation.Relation) string {
	if r == nil {
		return "-"
	}
	rows := make([]string, r.Len())
	for i := 0; i < r.Len(); i++ {
		tup := r.At(i)
		rows[i] = fmt.Sprintf("%d:%v", tup.TID, tup.Values)
	}
	sort.Strings(rows)
	return "[" + strings.Join(rows, " ") + "]"
}

// renderNotification canonicalizes one delivery.
func renderNotification(n Notification) string {
	mods := make([]string, len(n.Modified))
	for i, r := range n.Modified {
		mods[i] = fmt.Sprintf("%d:%v->%v", r.TID, r.Old, r.New)
	}
	sort.Strings(mods)
	return fmt.Sprintf("seq=%d ts=%d init=%v term=%v ins=%s del=%s mod=[%s] com=%s",
		n.Seq, n.ExecTS, n.Initial, n.Terminated,
		renderRel(n.Inserted), renderRel(n.Deleted),
		strings.Join(mods, " "), renderRel(n.Complete))
}

// e2eWorld runs the shared commit script under one refresh mode and
// returns the per-CQ notification transcript plus the final metrics
// snapshot. Modes: "poll" (push off, Poll after every commit), "push"
// (push on, FlushPush after every commit), "mixed" (push on with a
// 1-slot queue and 1 worker so most routings overflow, FlushPush + Poll
// after every commit — the overflowed CQs refresh through the poll
// fallback at the same timestamp).
func e2eWorld(t *testing.T, mode string, steps int) (map[string][]string, obs.Snapshot) {
	return e2eWorldCfg(t, mode, steps, nil)
}

// e2eWorldCfg is e2eWorld with a config hook, so variant worlds (row
// vs columnar engines, shared templates) replay the identical script.
func e2eWorldCfg(t *testing.T, mode string, steps int, mutate func(*Config)) (map[string][]string, obs.Snapshot) {
	t.Helper()
	reg := obs.NewRegistry()
	s := storage.NewStore()
	s.Instrument(reg)
	for _, table := range []string{"s1", "s2"} {
		if err := s.CreateTable(table, workload.StockSchema()); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{UseDRA: true, AutoGC: true, Metrics: reg}
	switch mode {
	case "push":
		cfg.Push = true
	case "mixed":
		cfg.Push = true
		cfg.PushQueue = 1
		cfg.Parallelism = 1
	}
	if mutate != nil {
		mutate(&cfg)
	}
	m := NewManagerConfig(s, cfg)
	defer func() { _ = m.Close() }()

	// Same-seed generators produce the same symbols in both tables, so
	// the equi-join on name is non-trivially populated.
	g1 := workload.NewStocks(s, "s1", 7, workload.DefaultMix)
	g2 := workload.NewStocks(s, "s2", 7, workload.DefaultMix)
	if err := g1.Seed(40); err != nil {
		t.Fatal(err)
	}
	if err := g2.Seed(40); err != nil {
		t.Fatal(err)
	}

	defs := []Def{
		{Name: "sel", Query: "SELECT * FROM s1 WHERE price > 50"},
		{Name: "join", Query: "SELECT s1.name, s2.price FROM s1, s2 WHERE s1.name = s2.name"},
		{Name: "upd3", Query: "SELECT * FROM s1 WHERE price > 20",
			Trigger: sql.TriggerSpec{Kind: sql.TriggerUpdates, Updates: 3}},
		{Name: "compl", Query: "SELECT * FROM s2 WHERE price > 100", Mode: sql.ModeComplete},
	}
	var mu sync.Mutex
	transcript := make(map[string][]string)
	for _, def := range defs {
		if _, err := m.Register(def); err != nil {
			t.Fatal(err)
		}
		name := def.Name
		if _, err := m.SubscribeFunc(name, func(n Notification, closed bool) {
			if closed {
				return
			}
			mu.Lock()
			transcript[name] = append(transcript[name], renderNotification(n))
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}

	// The synchronization discipline that makes the three modes
	// comparable: the logical clock ticks only on commits, and each mode
	// quiesces after every commit, so every refresh in every mode runs at
	// a commit timestamp with an identical delta window.
	for i := 0; i < steps; i++ {
		g := g1
		if i%3 == 1 {
			g = g2
		}
		if err := g.Batch(1 + i%4); err != nil {
			t.Fatal(err)
		}
		m.FlushPush() // no-op in poll mode
		if mode != "push" {
			if _, err := m.Poll(); err != nil {
				t.Fatal(err)
			}
		}
	}
	m.FlushPush()
	if _, err := m.Poll(); err != nil { // clears any final overflow residue
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return transcript, reg.Snapshot()
}

// TestPushPollEquivalence is the push/poll equivalence property: the
// same commit sequence must yield identical per-CQ notification
// sequences — Seq, ExecTS, and full deltas — whether refreshes are
// driven by the poll loop, by the push router, or by a mix where a
// deliberately starved queue forces the overflow fallback. Run with
// -race, this is also the concurrency check on the commit-hook pipeline.
func TestPushPollEquivalence(t *testing.T) {
	const steps = 48
	base, _ := e2eWorld(t, "poll", steps)
	for _, name := range []string{"sel", "join", "upd3", "compl"} {
		if len(base[name]) == 0 {
			t.Fatalf("poll transcript for %q is empty; the script is too tame", name)
		}
	}
	push, pushSnap := e2eWorld(t, "push", steps)
	mixed, mixedSnap := e2eWorld(t, "mixed", steps)

	// The push world must actually have pushed, and the mixed world must
	// actually have overflowed — otherwise the property holds vacuously.
	if pushSnap.Counter("push.refreshes") == 0 {
		t.Fatal("push mode never dispatched a refresh")
	}
	if mixedSnap.Counter("push.overflows") == 0 {
		t.Fatal("mixed mode never overflowed; the fallback path went unexercised")
	}

	for _, other := range []struct {
		mode string
		got  map[string][]string
	}{{"push", push}, {"mixed", mixed}} {
		for name, want := range base {
			got := other.got[name]
			if len(got) != len(want) {
				t.Errorf("%s: %q delivered %d notifications, poll delivered %d",
					other.mode, name, len(got), len(want))
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s: %q notification %d:\n  poll: %s\n  %s: %s",
						other.mode, name, i, want[i], other.mode, got[i])
				}
			}
		}
	}
}

// TestPushRefreshesWithoutPolling is the latency claim in miniature: in
// push mode a commit's refresh and notification arrive from FlushPush
// alone — no Poll, no poll loop.
func TestPushRefreshesWithoutPolling(t *testing.T) {
	s := newStoreWith(t, map[string]relation.Schema{"stocks": stockSchema()})
	reg := obs.NewRegistry()
	m := NewManagerConfig(s, Config{UseDRA: true, Push: true, Metrics: reg})
	defer func() { _ = m.Close() }()
	if _, err := m.Register(Def{Name: "q", Query: "SELECT * FROM stocks WHERE price > 100"}); err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Subscribe("q", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	insertStock(t, s, "DEC", 150)
	m.FlushPush()
	notes := drain(ch)
	if len(notes) != 1 {
		t.Fatalf("notifications = %d, want 1 (delivered by push, not poll)", len(notes))
	}
	if notes[0].Seq != 2 || notes[0].Inserted == nil || notes[0].Inserted.Len() != 1 {
		t.Fatalf("unexpected notification %+v", notes[0])
	}
	if reg.Snapshot().Counter("cq.polls") != 0 {
		t.Fatal("a poll ran; the push path should not need one")
	}
	// Seq stays gap-free when a Poll follows: the window is already
	// consumed, so the poll is a no-op.
	if n, err := m.Poll(); err != nil || n != 0 {
		t.Fatalf("post-push Poll = (%d, %v), want (0, nil)", n, err)
	}
}
