package batch

import (
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// randSchema builds a random schema of 1..6 typed columns.
func randSchema(rng *rand.Rand) relation.Schema {
	n := 1 + rng.Intn(6)
	cols := make([]relation.Column, n)
	types := []relation.Type{relation.TInt, relation.TFloat, relation.TString, relation.TBool}
	for i := range cols {
		cols[i] = relation.Column{
			Name: string(rune('a' + i)),
			Type: types[rng.Intn(len(types))],
		}
	}
	return relation.MustSchema(cols...)
}

// randValue draws a representable value for a column type; ~15% NULLs,
// always typed (the representability contract: untyped NULLs take the
// row path).
func randValue(rng *rand.Rand, t relation.Type) relation.Value {
	if rng.Intn(100) < 15 {
		return relation.TypedNull(t)
	}
	switch t {
	case relation.TInt:
		return relation.Int(rng.Int63n(1000) - 500)
	case relation.TFloat:
		return relation.Float(rng.NormFloat64())
	case relation.TString:
		letters := []string{"", "a", "bb", "ccc", "déjà", "x\x00y"}
		return relation.Str(letters[rng.Intn(len(letters))])
	default:
		return relation.Bool(rng.Intn(2) == 0)
	}
}

func randRow(rng *rand.Rand, schema relation.Schema) []relation.Value {
	vals := make([]relation.Value, schema.Len())
	for i := range vals {
		vals[i] = randValue(rng, schema.Col(i).Type)
	}
	return vals
}

// TestSignedRoundTripProperty: Signed -> Batch -> Signed is lossless for
// random schemas, signs, and typed NULLs.
func TestSignedRoundTripProperty(t *testing.T) {
	p := NewPool()
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		schema := randSchema(rng)
		in := &delta.Signed{Schema: schema}
		for i := 0; i < rng.Intn(40); i++ {
			sign := +1
			if rng.Intn(2) == 0 {
				sign = -1
			}
			in.Rows = append(in.Rows, delta.SignedRow{
				TID:    relation.TID(rng.Int63n(20)),
				Values: randRow(rng, schema),
				Sign:   sign,
			})
		}
		b, ok := FromSigned(p, in)
		if !ok {
			t.Fatalf("trial %d: representable input rejected", trial)
		}
		out := b.ToSigned()
		p.Put(b)
		if len(out.Rows) != len(in.Rows) {
			t.Fatalf("trial %d: %d rows -> %d rows", trial, len(in.Rows), len(out.Rows))
		}
		for i := range in.Rows {
			ir, or := in.Rows[i], out.Rows[i]
			if ir.TID != or.TID || ir.Sign != or.Sign {
				t.Fatalf("trial %d row %d: tid/sign mismatch %+v vs %+v", trial, i, ir, or)
			}
			for c := range ir.Values {
				iv, ov := ir.Values[c], or.Values[c]
				if !iv.Equal(ov) {
					t.Fatalf("trial %d row %d col %d: %v != %v", trial, i, c, iv, ov)
				}
				if iv.IsNull() && ov.Kind != schema.Col(c).Type {
					t.Fatalf("trial %d row %d col %d: NULL lost its type tag", trial, i, c)
				}
			}
		}
	}
}

// TestDeltaRoundTripProperty: Delta -> ordered batch -> Delta preserves
// every row kind, value, tid, and timestamp.
func TestDeltaRoundTripProperty(t *testing.T) {
	p := NewPool()
	for trial := 0; trial < 200; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		schema := randSchema(rng)
		in := delta.New(schema)
		ts := vclock.Timestamp(1)
		tid := relation.TID(1)
		for i := 0; i < rng.Intn(30); i++ {
			// Unique tids per ts window, mirroring one commit's shape.
			tid++
			var err error
			switch rng.Intn(3) {
			case 0:
				err = in.AppendInsert(tid, randRow(rng, schema), ts)
			case 1:
				err = in.AppendDelete(tid, randRow(rng, schema), ts)
			default:
				err = in.AppendModify(tid, randRow(rng, schema), randRow(rng, schema), ts)
			}
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				ts++
			}
		}
		b, ok := FromDelta(p, in)
		if !ok {
			t.Fatalf("trial %d: representable delta rejected", trial)
		}
		out, err := b.ToDeltaOrdered()
		p.Put(b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if out.Len() != in.Len() {
			t.Fatalf("trial %d: %d rows -> %d rows", trial, in.Len(), out.Len())
		}
		for i, ir := range in.Rows() {
			or := out.Rows()[i]
			if ir.TID != or.TID || ir.TS != or.TS || ir.Kind() != or.Kind() {
				t.Fatalf("trial %d row %d: %+v vs %+v", trial, i, ir, or)
			}
			if !halvesEqual(ir.Old, or.Old) || !halvesEqual(ir.New, or.New) {
				t.Fatalf("trial %d row %d: values diverged", trial, i)
			}
		}
	}
}

func halvesEqual(a, b []relation.Value) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestFromSignedFallsBack: unrepresentable values push conversion to
// report ok=false rather than corrupting data.
func TestFromSignedFallsBack(t *testing.T) {
	schema := relation.MustSchema(relation.Column{Name: "a", Type: relation.TInt})
	in := &delta.Signed{Schema: schema, Rows: []delta.SignedRow{
		{TID: 1, Values: []relation.Value{relation.NullValue()}, Sign: +1},
	}}
	if _, ok := FromSigned(nil, in); ok {
		t.Fatal("untyped NULL must force the row path")
	}
	in.Rows[0].Values[0] = relation.Str("oops")
	if _, ok := FromSigned(nil, in); ok {
		t.Fatal("kind mismatch must force the row path")
	}
}
