package dra

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
)

// netKey identifies one row of a netted signed delta. netSigned emits at
// most one negative and one positive row per tid, so (tid, sign) is a
// unique key within one result.
type netKey struct {
	tid  relation.TID
	sign int
}

// assertSameNet compares two netted signed deltas as sets: same keys,
// value-equal rows (relation.Value.Equal semantics, so NULL kind tags —
// which the columnar path normalizes to the column type — don't count).
func assertSameNet(t *testing.T, label string, row, vec *delta.Signed) {
	t.Helper()
	index := func(s *delta.Signed) map[netKey][]relation.Value {
		m := make(map[netKey][]relation.Value, len(s.Rows))
		for _, r := range s.Rows {
			k := netKey{tid: r.TID, sign: r.Sign}
			if _, dup := m[k]; dup {
				t.Fatalf("%s: duplicate net key %+v", label, k)
			}
			m[k] = r.Values
		}
		return m
	}
	rm, vm := index(row), index(vec)
	if len(rm) != len(vm) {
		t.Fatalf("%s: row path emitted %d rows, vec path %d", label, len(rm), len(vm))
	}
	for k, rv := range rm {
		vv, ok := vm[k]
		if !ok {
			t.Fatalf("%s: vec path missing row %+v", label, k)
		}
		if !sameValues(rv, vv) {
			t.Fatalf("%s: values diverge at %+v:\nrow: %v\nvec: %v", label, k, rv, vv)
		}
	}
}

// vecQueries is the SPJ shape pool for the transcript-equivalence
// checks: selections, computed and duplicated projections, equi and
// non-equi joins, three-way joins.
var vecQueries = []string{
	"SELECT * FROM r WHERE a > 100",
	"SELECT s1, a FROM r WHERE a > 50 AND s1 != 'k0'",
	"SELECT s1, s1, a FROM r WHERE a > 30",
	"SELECT s1, a * 2 AS a2 FROM r WHERE a > 40",
	"SELECT * FROM r JOIN u ON r.s1 = u.s2",
	"SELECT r.s1, u.b FROM r JOIN u ON r.s1 = u.s2 WHERE r.a > 80",
	"SELECT * FROM r, u WHERE r.s1 = u.s2 AND u.b < 150 AND r.a > 20",
	"SELECT * FROM r JOIN u ON r.a > u.b WHERE u.x < 5",
	"SELECT * FROM r JOIN u ON r.s1 = u.s2 JOIN w ON u.x = w.x WHERE w.c > 10",
	"SELECT r.a, w.c FROM r JOIN u ON r.s1 = u.s2 JOIN w ON u.x = w.x",
}

func vecFixtureSchemas() map[string]relation.Schema {
	return map[string]relation.Schema{
		"r": relation.MustSchema(
			relation.Column{Name: "s1", Type: relation.TString},
			relation.Column{Name: "a", Type: relation.TFloat},
		),
		"u": relation.MustSchema(
			relation.Column{Name: "s2", Type: relation.TString},
			relation.Column{Name: "b", Type: relation.TFloat},
			relation.Column{Name: "x", Type: relation.TInt},
		),
		"w": relation.MustSchema(
			relation.Column{Name: "x", Type: relation.TInt},
			relation.Column{Name: "c", Type: relation.TFloat},
		),
	}
}

// TestVectorizedMatchesRowPath is the tentpole's transcript-equivalence
// gate inside the engine: over random histories, a row-path engine and
// a vectorized engine (each with its own prepared plan and operand
// cache) must produce identical net signed deltas round after round,
// across the flag matrix that changes which kernels run.
func TestVectorizedMatchesRowPath(t *testing.T) {
	type variant struct {
		name string
		mod  func(*Engine)
	}
	variants := []variant{
		{"default", func(e *Engine) {}},
		{"no-hash", func(e *Engine) { e.UseHashJoin = false }},
		{"no-heuristics", func(e *Engine) { e.UseHeuristics = false }},
		{"no-compact", func(e *Engine) { e.CompactDeltas = false }},
		{"no-skip", func(e *Engine) { e.SkipIrrelevant = false }},
	}
	for qi, q := range vecQueries {
		for _, va := range variants {
			t.Run(fmt.Sprintf("q%d_%s", qi, va.name), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(qi*31 + 7)))
				f := newFixture(t, vecFixtureSchemas())
				live := liveSet{}
				applyRandomBatch(t, f, rng, live, 8, 3)

				plan := f.plan(t, q)
				rowEng := NewEngine()
				rowEng.Vectorized = false
				va.mod(rowEng)
				vecEng := NewEngine()
				va.mod(vecEng)

				rowP, err := rowEng.Prepare(plan, StrategyTruthTable)
				if err != nil {
					t.Fatal(err)
				}
				vecP, err := vecEng.Prepare(plan, StrategyTruthTable)
				if err != nil {
					t.Fatal(err)
				}
				prev, err := InitialResult(plan, f.store.Live())
				if err != nil {
					t.Fatal(err)
				}
				f.mark()
				for round := 0; round < 6; round++ {
					applyRandomBatch(t, f, rng, live, 1+rng.Intn(3), 1+rng.Intn(4))
					ctx := f.ctx(t)
					ctx.Prev = prev
					ts := f.store.Now()
					rowRes, err := rowP.Step(ctx, ts)
					if err != nil {
						t.Fatalf("round %d row: %v", round, err)
					}
					vecRes, err := vecP.Step(ctx, ts)
					if err != nil {
						t.Fatalf("round %d vec: %v", round, err)
					}
					assertSameNet(t, fmt.Sprintf("round %d", round), rowRes.Signed, vecRes.Signed)
					prev = rowRes.ApplyTo(prev)
					f.mark()
				}
			})
		}
	}
}

// TestVectorizedPrebuiltWindow drives the zero-copy scan entry: the
// context carries prebuilt columnar windows (as the cq scheduler's
// shared window cache does), compacted once and shared read-only, and
// the result must match the row path over the same compacted windows.
// Two vectorized steps share the same prebuilt batches to prove the
// views never mutate them.
func TestVectorizedPrebuiltWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := newFixture(t, vecFixtureSchemas())
	live := liveSet{}
	applyRandomBatch(t, f, rng, live, 8, 3)

	q := "SELECT * FROM r JOIN u ON r.s1 = u.s2 WHERE r.a > 20"
	plan := f.plan(t, q)
	rowEng := NewEngine()
	rowEng.Vectorized = false
	vecEng := NewEngine()
	vecA, err := vecEng.Prepare(plan, StrategyTruthTable)
	if err != nil {
		t.Fatal(err)
	}
	vecB, err := vecEng.Prepare(plan, StrategyTruthTable)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := InitialResult(plan, f.store.Live())
	if err != nil {
		t.Fatal(err)
	}
	f.mark()
	pool := batch.NewPool()
	for round := 0; round < 5; round++ {
		applyRandomBatch(t, f, rng, live, 2, 3)
		ctx := f.ctx(t)
		// Compact once, as the shared window cache does, and attach the
		// columnar image of every window.
		ctx.Compacted = true
		ctx.Batches = make(map[string]*batch.Batch, len(ctx.Deltas))
		for name, d := range ctx.Deltas {
			cd := d.Compact()
			ctx.Deltas[name] = cd
			if b, ok := batch.FromDelta(pool, cd); ok {
				ctx.Batches[name] = b
			}
		}
		ctx.Prev = prev
		ts := f.store.Now()
		rowRes, err := rowEng.Reevaluate(plan, ctx, ts)
		if err != nil {
			t.Fatal(err)
		}
		aRes, err := vecA.Step(ctx, ts)
		if err != nil {
			t.Fatal(err)
		}
		bRes, err := vecB.Step(ctx, ts)
		if err != nil {
			t.Fatal(err)
		}
		assertSameNet(t, fmt.Sprintf("round %d A", round), rowRes.Signed, aRes.Signed)
		assertSameNet(t, fmt.Sprintf("round %d B", round), rowRes.Signed, bRes.Signed)
		for _, b := range ctx.Batches {
			pool.Put(b)
		}
		prev = rowRes.ApplyTo(prev)
		f.mark()
	}
}

// TestVectorizedFallbackKeepsCachesCoherent forces the columnar path to
// bail out mid-refresh (storage validates arity only, so a wrong-kind
// value is insertable and unrepresentable in a typed column) and checks
// the refresh still answers through the row path — then, critically,
// that the NEXT refresh is also correct: the deferred-advance design
// means the fallback round left the prepared operand replicas
// untouched, so they must revalidate or rebuild rather than serve a
// half-advanced state.
func TestVectorizedFallbackKeepsCachesCoherent(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := newFixture(t, vecFixtureSchemas())
	live := liveSet{}
	applyRandomBatch(t, f, rng, live, 8, 3)

	q := "SELECT * FROM r JOIN u ON r.s1 = u.s2"
	plan := f.plan(t, q)
	rowEng := NewEngine()
	rowEng.Vectorized = false
	vecEng := NewEngine()
	rowP, err := rowEng.Prepare(plan, StrategyTruthTable)
	if err != nil {
		t.Fatal(err)
	}
	vecP, err := vecEng.Prepare(plan, StrategyTruthTable)
	if err != nil {
		t.Fatal(err)
	}
	prev, err := InitialResult(plan, f.store.Live())
	if err != nil {
		t.Fatal(err)
	}
	f.mark()

	step := func(round string) {
		ctx := f.ctx(t)
		ctx.Prev = prev
		ts := f.store.Now()
		rowRes, err := rowP.Step(ctx, ts)
		if err != nil {
			t.Fatalf("%s row: %v", round, err)
		}
		vecRes, err := vecP.Step(ctx, ts)
		if err != nil {
			t.Fatalf("%s vec: %v", round, err)
		}
		assertSameNet(t, round, rowRes.Signed, vecRes.Signed)
		prev = rowRes.ApplyTo(prev)
		f.mark()
	}

	// Round 1: clean data, vectorized path runs and advances its cache.
	applyRandomBatch(t, f, rng, live, 2, 3)
	step("clean-1")

	// Round 2: a kind-drifted row (string in the float column) makes the
	// window unrepresentable; the vectorized engine must fall back and
	// still match.
	tx := f.store.Begin()
	tid, err := tx.Insert("r", []relation.Value{relation.Str("k1"), relation.Str("oops")})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	step("drifted")

	// Round 3: the drifted row leaves again; the vectorized cache,
	// untouched by the fallback round, must rebuild/revalidate and agree.
	tx = f.store.Begin()
	if err := tx.Delete("r", tid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	applyRandomBatch(t, f, rng, live, 2, 3)
	step("clean-2")
}

// TestVectorizedPathTaken guards against the silent-degradation
// failure mode: over clean typed data, vecEvaluate must actually run
// (ok=true) for every query shape, not quietly fall back to rows.
func TestVectorizedPathTaken(t *testing.T) {
	for qi, q := range vecQueries {
		rng := rand.New(rand.NewSource(int64(qi)))
		f := newFixture(t, vecFixtureSchemas())
		live := liveSet{}
		applyRandomBatch(t, f, rng, live, 6, 3)

		plan := f.plan(t, q)
		e := NewEngine()
		p, err := e.Prepare(plan, StrategyTruthTable)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := InitialResult(plan, f.store.Live())
		if err != nil {
			t.Fatal(err)
		}
		f.mark()
		applyRandomBatch(t, f, rng, live, 3, 3)
		ctx := f.ctx(t)
		ctx.Prev = prev
		var st Stats
		_, ok, err := e.vecEvaluate(p.root, ctx, f.store.Now(), &st)
		if err != nil {
			t.Fatalf("q%d: %v", qi, err)
		}
		if !ok {
			t.Fatalf("q%d: vectorized path fell back on clean typed data", qi)
		}
	}
}

// TestVectorizedCompleteResult chains vectorized refreshes only,
// maintaining the complete result, and checks each round against full
// re-evaluation — the paper's functional-equivalence statement for the
// columnar engine on its own.
func TestVectorizedCompleteResult(t *testing.T) {
	for qi, q := range vecQueries {
		t.Run(fmt.Sprintf("q%d", qi), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + qi)))
			f := newFixture(t, vecFixtureSchemas())
			live := liveSet{}
			applyRandomBatch(t, f, rng, live, 8, 3)

			plan := f.plan(t, q)
			prev, err := InitialResult(plan, f.store.Live())
			if err != nil {
				t.Fatal(err)
			}
			f.mark()
			for round := 0; round < 6; round++ {
				applyRandomBatch(t, f, rng, live, 1+rng.Intn(3), 1+rng.Intn(4))
				_, complete := f.reval(t, NewEngine(), plan, prev)
				prev = complete
				f.mark()
			}
		})
	}
}
