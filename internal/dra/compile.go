package dra

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
)

// compiledNode is the refresh-invariant compilation of one SPJ plan
// node: every algebra.Compile result, join binding, and predicate mask
// the differential evaluator needs, derived once so that a refresh only
// pays for delta rows. Exactly one of the kind fields is set.
//
// Reevaluate builds a transient tree per call; Prepare builds one at CQ
// registration and reuses it for the life of the query.
type compiledNode struct {
	plan algebra.Plan
	scan *algebra.ScanPlan
	sel  *compiledSelect
	proj *compiledProject
	join *compiledJoin
}

type compiledSelect struct {
	input *compiledNode
	pred  algebra.CompiledExpr
}

type compiledProject struct {
	input  *compiledNode
	items  []algebra.CompiledExpr
	schema relation.Schema
}

// equiBind is the pre-resolved form of one equi conjunct (column =
// column): the two full-width column indexes, looked up once instead of
// per truth-table term.
type equiBind struct {
	ok     bool // the conjunct is col = col
	li, ri int  // full-width column indexes of the two sides
}

// compiledJoin owns everything refresh-invariant about one flattened
// join group: its operands with their compiled subtrees, the
// cross-operand conjuncts compiled against the flattened schema, each
// conjunct's operand bitmask, and the resolved equi-join bindings.
type compiledJoin struct {
	plan      *algebra.JoinPlan
	ops       []*operand
	opNodes   []*compiledNode
	preds     []sql.Expr
	cPreds    []algebra.CompiledExpr
	masks     []uint64
	equi      []equiBind
	outSchema relation.Schema

	// cache holds pre-state operand replicas and their hash indexes
	// across refreshes. Nil on the transient Reevaluate path; set by
	// Prepare.
	cache *opCache
}

// compilePlan builds the compiled mirror of an SPJ plan. Plans outside
// the SPJ class (aggregates, distinct, sort, limit) are rejected;
// callers gate on supportsDifferential first.
func compilePlan(p algebra.Plan) (*compiledNode, error) {
	switch n := p.(type) {
	case *algebra.ScanPlan:
		return &compiledNode{plan: p, scan: n}, nil
	case *algebra.SelectPlan:
		in, err := compilePlan(n.Input)
		if err != nil {
			return nil, err
		}
		ce, err := algebra.Compile(n.Pred, n.Input.Schema())
		if err != nil {
			return nil, err
		}
		return &compiledNode{plan: p, sel: &compiledSelect{input: in, pred: ce}}, nil
	case *algebra.ProjectPlan:
		in, err := compilePlan(n.Input)
		if err != nil {
			return nil, err
		}
		items := make([]algebra.CompiledExpr, len(n.Items))
		for i, it := range n.Items {
			ce, err := algebra.Compile(it.Expr, n.Input.Schema())
			if err != nil {
				return nil, err
			}
			items[i] = ce
		}
		return &compiledNode{plan: p, proj: &compiledProject{input: in, items: items, schema: p.Schema()}}, nil
	case *algebra.JoinPlan:
		return compileJoin(n)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnsupportedPlan, p)
	}
}

// compileJoin flattens a join subtree and resolves everything the
// truth-table evaluator used to re-derive per refresh (or per term):
// compiled conjuncts, operand masks, equi bindings.
func compileJoin(n *algebra.JoinPlan) (*compiledNode, error) {
	ops, preds, err := flatten(n)
	if err != nil {
		return nil, err
	}
	opNodes := make([]*compiledNode, len(ops))
	for i, op := range ops {
		opNodes[i], err = compilePlan(op.plan)
		if err != nil {
			return nil, err
		}
	}
	outSchema := n.Schema()
	cPreds, masks, err := compilePreds(preds, outSchema, ops)
	if err != nil {
		return nil, err
	}
	equi := make([]equiBind, len(preds))
	for i, p := range preds {
		if !isEquiConjunct(p) {
			continue
		}
		be := p.(*sql.BinaryExpr)
		li, lok := outSchema.ColIndex(be.L.(*sql.ColumnRef).Name)
		ri, rok := outSchema.ColIndex(be.R.(*sql.ColumnRef).Name)
		if lok && rok {
			equi[i] = equiBind{ok: true, li: li, ri: ri}
		}
	}
	cj := &compiledJoin{
		plan:      n,
		ops:       ops,
		opNodes:   opNodes,
		preds:     preds,
		cPreds:    cPreds,
		masks:     masks,
		equi:      equi,
		outSchema: outSchema,
	}
	return &compiledNode{plan: n, join: cj}, nil
}

// joinFree reports that no join occurs in the subtree.
func (n *compiledNode) joinFree() bool {
	switch {
	case n.scan != nil:
		return true
	case n.sel != nil:
		return n.sel.input.joinFree()
	case n.proj != nil:
		return n.proj.input.joinFree()
	default:
		return false
	}
}

// operands collects the maximal join-free subtrees of the tree — the
// units whose filtered deltas decide relevance (Section 5.2) and whose
// pre-states the truth table materializes.
func (n *compiledNode) operands(out []*compiledNode) []*compiledNode {
	if n.joinFree() {
		return append(out, n)
	}
	switch {
	case n.sel != nil:
		return n.sel.input.operands(out)
	case n.proj != nil:
		return n.proj.input.operands(out)
	default:
		for _, op := range n.join.opNodes {
			out = op.operands(out)
		}
		return out
	}
}

// eachJoin visits every join group in the tree, topmost first.
func (n *compiledNode) eachJoin(f func(*compiledJoin)) {
	switch {
	case n.sel != nil:
		n.sel.input.eachJoin(f)
	case n.proj != nil:
		n.proj.input.eachJoin(f)
	case n.join != nil:
		f(n.join)
		for _, op := range n.join.opNodes {
			op.eachJoin(f)
		}
	}
}

// equiCoverage is the fraction of the n-1 join steps that can use an
// equi-key probe when the join is grown greedily from operand 0 — 1.0
// means a fully equi-connected join graph (no cross steps), the shape
// where maintained hash indexes pay off.
func (cj *compiledJoin) equiCoverage() float64 {
	n := len(cj.ops)
	if n < 2 {
		return 1
	}
	visited := make([]bool, n)
	visited[0] = true
	var filled uint64 = 1
	equiSteps := 0
	for count := 1; count < n; count++ {
		found := false
		for pi := range cj.preds {
			if !cj.equi[pi].ok {
				continue
			}
			m := cj.masks[pi]
			for j := 0; j < n && !found; j++ {
				jbit := uint64(1) << uint(j)
				if visited[j] || m&jbit == 0 || m&filled == 0 || m&^(filled|jbit) != 0 {
					continue
				}
				visited[j] = true
				filled |= jbit
				equiSteps++
				found = true
			}
			if found {
				break
			}
		}
		if !found {
			for j := 0; j < n; j++ {
				if !visited[j] {
					visited[j] = true
					filled |= uint64(1) << uint(j)
					break
				}
			}
		}
	}
	return float64(equiSteps) / float64(n-1)
}
