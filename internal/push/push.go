// Package push implements commit-driven reactive refresh: the routing
// layer between the store's commit hook and the CQ manager's refresh
// machinery that retires the poll loop from the hot path.
//
// The paper evaluates trigger conditions periodically (Section 5.3), so
// a committed update sits in the differential relation until the next
// poll tick — commit-to-notification latency is bounded below by the
// poll interval no matter how fast a refresh runs. The Router removes
// that bound: the store publishes each committed delta (table,
// timestamp, change counts) into an operand-to-CQ inverted index, the
// affected CQs are enqueued on a bounded ready queue, and dispatcher
// workers evaluate their triggers and refresh them immediately. This is
// the edge/pipeline model of streaming engines (points routed through
// bounded channels between processing nodes) applied to the paper's
// differential circuit: commits are the stream, refreshes the nodes.
//
// Two properties keep the hybrid safe and cheap:
//
//   - Coalescing: a CQ already queued (or being dispatched) absorbs
//     later commits by merging — the eventual refresh evaluates one
//     differential window covering all of them, so a burst of commits
//     costs one refresh, not one per commit.
//
//   - Backpressure with poll fallback: the ready queue is bounded; when
//     it overflows, the CQ's work is simply left in the delta store for
//     the next poll tick (the poll loop remains the catch-all for
//     overflow and for time-based triggers, which gain nothing from
//     push). Degradation is graceful by construction — push never
//     queues unboundedly and never loses work, because the delta store,
//     not the queue, is the source of truth.
package push

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/diorama/continual/internal/batch"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

// DefaultQueue is the ready-queue capacity when Config.Queue is 0.
const DefaultQueue = 1024

// DispatchFunc is the router's callback into the refresh machinery: it
// evaluates the named CQ's trigger at the current logical time and
// refreshes it if the trigger fired. refreshed reports a refresh ran
// (the latency histogram only observes those); retire tells the router
// to forget the CQ (dropped or terminated). Dispatch runs on router
// worker goroutines and must be safe for concurrent calls on different
// names; concurrent calls on the same name are possible and must
// serialize internally (the manager's per-instance lock does).
type DispatchFunc func(name string) (refreshed, retire bool, err error)

// Config tunes a Router.
type Config struct {
	// Queue bounds the ready queue of CQs awaiting dispatch. Because a
	// queued CQ coalesces instead of re-queueing, the queue holds at
	// most one entry per registered CQ; a capacity at or above the CQ
	// population means overflow is impossible. 0 uses DefaultQueue.
	Queue int
	// Workers is the dispatcher pool size; 0 uses GOMAXPROCS.
	Workers int
	// Metrics attaches the router's push.* instruments; nil disables
	// instrumentation (every hook reduces to a nil check).
	Metrics *obs.Registry
	// Logf receives rare diagnostic lines (dispatch errors); nil
	// discards them — the manager already records per-CQ errors in
	// CQState.LastErr.
	Logf func(format string, args ...any)
}

// entry is the router's record of one routed CQ. queued, commits,
// firstAt and lastTS are guarded by Router.mu.
type entry struct {
	name   string
	tables []string
	// gate, when set, is consulted at routing time: false means the CQ
	// is quarantined and commits should not queue a dispatch for it (the
	// poll loop's breaker check owns probing). The gate must be
	// side-effect-free and self-locked — it runs under Router.mu, which
	// itself may be under the store mutex.
	gate func() bool
	// queued marks the entry as sitting in the ready queue: later
	// commits merge into it instead of enqueueing again.
	queued bool
	// commits counts the commit routings coalesced into the pending
	// dispatch (1 on enqueue, +1 per merge).
	commits int64
	// firstAt is the arrival instant of the oldest coalesced commit —
	// the anchor of the commit-to-notification latency histogram.
	firstAt time.Time
	// lastTS dedupes within one event: a commit touching two operand
	// tables of the same CQ must route once, not twice.
	lastTS vclock.Timestamp
	// refs accumulates, per operand table, references to the columnar
	// commit images routed since the last TakeBatches — the batches the
	// store built once at commit, shared by every subscribed entry
	// without copying. A nil slice with gapped set means some commit in
	// the span carried no usable image (unrepresentable values, or the
	// per-table cap was hit); the consumer must fall back to the window.
	refs   map[string][]BatchRef
	gapped map[string]bool
}

// BatchRef is one commit's columnar image for one table, tagged with
// the commit timestamp so a consumer can check the refs it took cover
// exactly the differential window it is about to evaluate.
type BatchRef struct {
	TS    vclock.Timestamp
	Batch *batch.Batch
}

// maxRefsPerTable bounds how many commit images one entry retains per
// table between dispatches. Past the cap the entry drops the whole run
// (a gap is a gap — partial coverage is worthless) and the eventual
// refresh converts its window instead.
const maxRefsPerTable = 64

// Router routes committed deltas to the continual queries whose
// operands they touch. All exported methods are safe for concurrent
// use. Lock discipline: Router.mu is a leaf — nothing is called while
// holding it — so Publish may run under the store mutex (the commit
// hook does) and Register under the manager mutex.
type Router struct {
	cfg      Config
	dispatch DispatchFunc
	met      *metrics

	mu sync.Mutex
	// cond broadcasts when pending returns to zero (Flush waits on it).
	cond *sync.Cond
	// index is the operand inverted index: table name -> CQ name -> entry.
	index map[string]map[string]*entry
	cqs   map[string]*entry
	queue chan *entry
	// pending counts entries enqueued but not yet fully dispatched.
	pending int
	closed  bool
	wg      sync.WaitGroup
}

// NewRouter builds a router and starts its dispatcher workers. Close it
// to drain the queue and stop them.
func NewRouter(cfg Config, dispatch DispatchFunc) *Router {
	if cfg.Queue <= 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	r := &Router{
		cfg:      cfg,
		dispatch: dispatch,
		met:      newMetrics(cfg.Metrics),
		index:    make(map[string]map[string]*entry),
		cqs:      make(map[string]*entry),
		queue:    make(chan *entry, cfg.Queue),
	}
	r.cond = sync.NewCond(&r.mu)
	for w := 0; w < cfg.Workers; w++ {
		r.wg.Add(1)
		// guarded: each dispatch runs through safeDispatch, the
		// worker's recover boundary.
		go r.worker()
	}
	return r
}

// Register indexes a CQ's operand tables so commits touching them route
// to it. Re-registering a name replaces its table set. gate (optional)
// lets the owner veto routing per commit — the manager passes the CQ
// breaker's Blocked check so quarantined CQs stop consuming dispatch
// slots; nil always routes.
func (r *Router) Register(name string, tables []string, gate func() bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if old := r.cqs[name]; old != nil {
		r.unindexLocked(old)
	}
	e := &entry{name: name, tables: append([]string(nil), tables...), gate: gate}
	r.cqs[name] = e
	for _, t := range e.tables {
		byCQ := r.index[t]
		if byCQ == nil {
			byCQ = make(map[string]*entry)
			r.index[t] = byCQ
		}
		byCQ[name] = e
	}
	if m := r.met; m != nil {
		m.registered.Set(int64(len(r.cqs)))
	}
}

// Unregister removes a CQ from the index. A dispatch already in flight
// for it completes; new commits no longer route to it.
func (r *Router) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cqs[name]
	if !ok {
		return
	}
	r.unindexLocked(e)
	delete(r.cqs, name)
	if m := r.met; m != nil {
		m.registered.Set(int64(len(r.cqs)))
	}
}

// unindexLocked removes an entry from the inverted index. Caller holds
// r.mu.
func (r *Router) unindexLocked(e *entry) {
	for _, t := range e.tables {
		if byCQ := r.index[t]; byCQ != nil {
			delete(byCQ, e.name)
			if len(byCQ) == 0 {
				delete(r.index, t)
			}
		}
	}
}

// Publish routes one committed transaction: every registered CQ whose
// operand set intersects the commit's tables is enqueued for dispatch,
// or merged into its already-queued entry (coalescing), or — when the
// ready queue is full — left for the poll loop (overflow fallback).
// Publish never blocks; it is called from the store's commit hook under
// the store mutex.
func (r *Router) Publish(ev storage.CommitEvent) {
	now := ev.At
	if now.IsZero() {
		now = time.Now()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	if m := r.met; m != nil {
		m.events.Inc()
	}
	// Degraded mode: at or above the soft watermark the router stops
	// queueing dispatches entirely and lets the poll loop absorb the
	// backlog in coalesced batch rounds — push's per-commit eagerness is
	// exactly the wrong shape under overload. Deltas stay in the store;
	// nothing is lost (the differential catch-up property).
	if ev.Overload >= storage.OverloadSoft {
		// The skipped commit punches a hole in every affected entry's
		// accumulated columnar refs; drop them now rather than letting
		// the consumer discover the gap at refresh time.
		for _, ch := range ev.Changes {
			for _, e := range r.index[ch.Table] {
				e.markGap(ch.Table)
			}
		}
		if m := r.met; m != nil {
			m.shed.Inc()
		}
		return
	}
	for _, ch := range ev.Changes {
		for _, e := range r.index[ch.Table] {
			stored, gap := e.accumulate(ch.Table, ev.TS, ch.Batch)
			if m := r.met; m != nil {
				if stored {
					m.batchRefs.Inc()
				}
				if gap {
					m.batchGaps.Inc()
				}
			}
			if e.lastTS == ev.TS {
				continue // commit touched two operands of this CQ
			}
			e.lastTS = ev.TS
			if e.gate != nil && !e.gate() {
				// Quarantined: skip routing. The deltas accumulate in
				// the store; the successful probe's refresh covers them
				// differentially from the CQ's last timestamp.
				if m := r.met; m != nil {
					m.gateSkips.Inc()
				}
				continue
			}
			if m := r.met; m != nil {
				m.routed.Inc()
			}
			if e.queued {
				e.commits++
				if m := r.met; m != nil {
					m.coalesced.Inc()
				}
				continue
			}
			select {
			case r.queue <- e:
				e.queued = true
				e.commits = 1
				e.firstAt = now
				r.pending++
			default:
				// Queue full: leave the delta for the next poll tick.
				// Nothing is lost — the delta store is the source of
				// truth and Poll evaluates every trigger.
				if m := r.met; m != nil {
					m.overflows.Inc()
				}
			}
		}
	}
	if m := r.met; m != nil {
		m.queueDepth.Set(int64(len(r.queue)))
	}
}

// accumulate records one commit's columnar image for one table, in
// commit order. Caller holds r.mu. stored reports the ref was kept;
// gap reports this call opened a gap (nil image or cap reached), which
// discards the table's run — later commits are skipped until the next
// TakeBatches resets the state.
func (e *entry) accumulate(table string, ts vclock.Timestamp, b *batch.Batch) (stored, gap bool) {
	if e.gapped[table] {
		return false, false
	}
	if b == nil || len(e.refs[table]) >= maxRefsPerTable {
		e.markGap(table)
		return false, true
	}
	if e.refs == nil {
		e.refs = make(map[string][]BatchRef, len(e.tables))
	}
	e.refs[table] = append(e.refs[table], BatchRef{TS: ts, Batch: b})
	return true, false
}

// markGap discards a table's accumulated refs and blocks further
// accumulation until the next TakeBatches. Caller holds r.mu.
func (e *entry) markGap(table string) {
	if e.gapped == nil {
		e.gapped = make(map[string]bool, len(e.tables))
	}
	e.gapped[table] = true
	delete(e.refs, table)
}

// TakeBatches removes and returns the columnar commit images routed to
// the named CQ with commit timestamps at or below upTo: per table, that
// table's refs in commit order. Refs beyond upTo stay accumulated for
// the next take — they belong to commits the caller's refresh window
// will not cover. A table absent from the map had a gap (or saw no
// commits) — the consumer must pull its window the ordinary way. The
// caller owns the returned map and slices; the batches themselves stay
// shared read-only, since other CQs subscribed to the same tables hold
// references to the very same commit images.
func (r *Router) TakeBatches(name string, upTo vclock.Timestamp) map[string][]BatchRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cqs[name]
	if !ok || (e.refs == nil && e.gapped == nil) {
		return nil
	}
	var out map[string][]BatchRef
	for t, run := range e.refs {
		cut := len(run)
		for cut > 0 && run[cut-1].TS > upTo {
			cut--
		}
		if cut == 0 {
			continue
		}
		if out == nil {
			out = make(map[string][]BatchRef, len(e.refs))
		}
		out[t] = run[:cut:cut]
		if cut == len(run) {
			delete(e.refs, t)
		} else {
			e.refs[t] = append([]BatchRef(nil), run[cut:]...)
		}
	}
	// A gap poisons only the span up to this take: the refresh that
	// triggered the take covers everything at or below upTo from the
	// window itself, so accumulation may start fresh.
	e.gapped = nil
	return out
}

// worker dequeues ready CQs and dispatches them. The queued flag drops
// at dequeue, BEFORE the dispatch runs: a commit landing mid-refresh
// re-enqueues the CQ, whose next dispatch covers the residue — no
// commit is ever left behind by the race.
func (r *Router) worker() {
	defer r.wg.Done()
	for e := range r.queue {
		r.mu.Lock()
		e.queued = false
		commits := e.commits
		e.commits = 0
		firstAt := e.firstAt
		r.mu.Unlock()

		refreshed, retire, err := r.safeDispatch(e.name)
		if err != nil && r.cfg.Logf != nil {
			r.cfg.Logf("push: dispatch %q: %v", e.name, err)
		}
		if m := r.met; m != nil {
			m.dispatches.Inc()
			m.dispatchedCommits.Add(commits)
			if refreshed {
				m.refreshes.Inc()
				m.notifyNS.Observe(time.Since(firstAt))
			}
			if err != nil {
				m.errors.Inc()
			}
			m.queueDepth.Set(int64(len(r.queue)))
		}
		if retire {
			r.Unregister(e.name)
		}

		r.mu.Lock()
		r.pending--
		if r.pending == 0 {
			r.cond.Broadcast()
		}
		r.mu.Unlock()
	}
}

// safeDispatch is the worker's recover boundary: the manager isolates
// refresh panics itself, but a panic anywhere else in the dispatch path
// must not kill a worker goroutine (Close would hang on wg.Wait with
// the queue still draining).
func (r *Router) safeDispatch(name string) (refreshed, retire bool, err error) {
	defer func() {
		if v := recover(); v != nil {
			refreshed, retire = false, false
			err = fmt.Errorf("push: dispatch %q panicked: %v", name, v)
		}
	}()
	return r.dispatch(name)
}

// Flush blocks until every queued dispatch has run — the
// quiescence barrier the graceful-drain path and the push/poll
// equivalence tests rely on. Callers must stop committing first (or
// accept that concurrent commits re-arm the queue).
func (r *Router) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.pending > 0 {
		r.cond.Wait()
	}
}

// Pending reports the number of CQs enqueued or mid-dispatch.
func (r *Router) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}

// Close drains the queue — every pending entry is dispatched, so no
// committed delta is left unevaluated by the push path — and stops the
// workers. The commit hook must be detached before Close, or a racing
// commit could publish into a closed router (Publish checks, so it
// degrades to the poll fallback rather than panicking). Idempotent.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.queue)
	r.mu.Unlock()
	r.wg.Wait()
}
