// Package cascade tracks the dependency DAG of materializing continual
// queries. A CQ declared with an INTO target commits its per-refresh
// result delta into a derived base table; downstream CQs read that
// table like any other, which chains evaluations into a DAG of
// CQ → table → CQ edges. The registry owns the shape invariants of
// that graph:
//
//   - acyclicity — a query may never (transitively) feed its own
//     inputs, or one poll round could not produce a fixed point;
//   - a bounded depth — each materialization stage adds one commit hop
//     of latency, so runaway pipelines are rejected at registration;
//   - exactly one producer per derived table;
//   - dependent tracking — a producer (or a table) cannot be dropped
//     while downstream readers exist, so the scheduler's topological
//     stage assignment stays valid for the lifetime of every instance.
//
// The registry stores names only. The cq manager consults it at
// registration (stage assignment, cycle and depth checks), at drop
// (dependent listing), and per poll round (stage count); the storage
// layer never sees it — derived deltas flow through the ordinary
// commit path, which is what makes the rest of the engine cascade-
// oblivious.
package cascade

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DefaultMaxDepth bounds the pipeline length: a chain of
// DefaultMaxDepth materialization stages (base tables are stage 0)
// is the deepest registrable cascade.
const DefaultMaxDepth = 8

// Errors returned by Register.
var (
	// ErrCycle marks a registration whose INTO target (transitively)
	// feeds one of its own source tables.
	ErrCycle = errors.New("cascade: registration would create a cycle")
	// ErrTooDeep marks a registration past the depth bound.
	ErrTooDeep = errors.New("cascade: pipeline exceeds the depth bound")
	// ErrDuplicateProducer marks a second CQ claiming an INTO target
	// that already has a producer.
	ErrDuplicateProducer = errors.New("cascade: derived table already has a producer")
)

// DependentsError reports a drop refused because downstream consumers
// still read the victim (a CQ's derived table, or a base table).
type DependentsError struct {
	// Name is the CQ or table whose drop was refused.
	Name string
	// Dependents lists the downstream CQs still reading it (sorted).
	Dependents []string
}

// Error implements error.
func (e *DependentsError) Error() string {
	return fmt.Sprintf("cascade: %q has downstream dependents: %s",
		e.Name, strings.Join(e.Dependents, ", "))
}

// Node describes one registered CQ's place in the DAG (Describe output,
// `cqctl deps`).
type Node struct {
	// CQ is the query name.
	CQ string
	// Sources are the tables the query reads (sorted).
	Sources []string
	// Target is the INTO table, empty for terminal queries.
	Target string
	// Stage is the topological refresh stage: 0 for queries over base
	// tables only, 1 + max(producer stages) otherwise.
	Stage int
}

// Registry is the DAG bookkeeping. Safe for concurrent use; every
// method is a leaf (no callbacks), so it can be consulted under any
// manager lock.
type Registry struct {
	mu       sync.Mutex
	maxDepth int
	// producer maps derived table -> the CQ materializing it.
	producer map[string]string
	// nodes maps CQ name -> its DAG record.
	nodes map[string]*Node
	// readers maps table -> the set of CQs scanning it.
	readers map[string]map[string]bool
}

// New creates a registry with the given depth bound (<= 0 uses
// DefaultMaxDepth).
func New(maxDepth int) *Registry {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	return &Registry{
		maxDepth: maxDepth,
		producer: make(map[string]string),
		nodes:    make(map[string]*Node),
		readers:  make(map[string]map[string]bool),
	}
}

// Register records a CQ reading sources, optionally materializing into
// target (empty for terminal queries), and returns its refresh stage.
// It rejects cycles, duplicate producers, and pipelines past the depth
// bound, leaving the registry unchanged on error.
func (r *Registry) Register(cq string, sources []string, target string) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.nodes[cq]; dup {
		return 0, fmt.Errorf("cascade: cq %q already registered", cq)
	}
	if target != "" {
		if owner, taken := r.producer[target]; taken {
			return 0, fmt.Errorf("%w: %q is produced by %q", ErrDuplicateProducer, target, owner)
		}
		// Cycle check: the target must not be an ancestor of any source.
		// Ancestors of a table are the source tables of its producer,
		// transitively; reaching the target from a source means the new
		// edge closes a loop. Direct self-feeding (target ∈ sources) is
		// the one-hop case of the same walk.
		for _, src := range sources {
			if r.reachesLocked(src, target) {
				return 0, fmt.Errorf("%w: %q feeds source %q of cq %q", ErrCycle, target, src, cq)
			}
		}
	}
	srcs := append([]string(nil), sources...)
	sort.Strings(srcs)
	node := &Node{CQ: cq, Sources: srcs, Target: target}
	node.Stage = r.stageFromSourcesLocked(srcs)
	if target != "" && node.Stage+1 > r.maxDepth {
		return 0, fmt.Errorf("%w: %q at stage %d would exceed max depth %d",
			ErrTooDeep, cq, node.Stage+1, r.maxDepth)
	}
	r.nodes[cq] = node
	if target != "" {
		r.producer[target] = cq
		// A producer may register AFTER readers of its target already
		// exist (checkpoint recovery resumes CQs in snapshot order; live
		// registration can adopt an orphaned target table that terminal
		// CQs were already scanning). Those readers must be promoted
		// retroactively or the staged poll would refresh them before
		// their upstream commits. Only the subgraph downstream of the
		// target can change, so the repropagation is bounded by it —
		// a terminal registration (the common case) touches nothing.
		promoted, err := r.restageLocked(target)
		if err != nil {
			delete(r.nodes, cq)
			delete(r.producer, target)
			return 0, err
		}
		for name, s := range promoted {
			r.nodes[name].Stage = s
		}
	}
	for _, src := range srcs {
		set := r.readers[src]
		if set == nil {
			set = make(map[string]bool)
			r.readers[src] = set
		}
		set[cq] = true
	}
	return node.Stage, nil
}

// stageFromSourcesLocked computes a node's topological stage from its
// source tables: 0 over producerless tables only, else 1 + max over
// sources of their producer's stage. Caller holds r.mu.
func (r *Registry) stageFromSourcesLocked(sources []string) int {
	s := 0
	for _, src := range sources {
		if prod, ok := r.producer[src]; ok {
			if d := r.nodes[prod].Stage + 1; d > s {
				s = d
			}
		}
	}
	return s
}

// restageLocked recomputes the stages of every node downstream of the
// given table after its producer changed, returning the proposed
// updates without mutating any node — the caller commits them only on
// success, so an ErrTooDeep rejection leaves the registry untouched.
// The walk is bounded by the affected subgraph (acyclic by invariant)
// and reports ErrTooDeep if a promotion would push a materializing
// node's target past the depth bound. Caller holds r.mu.
func (r *Registry) restageLocked(table string) (map[string]int, error) {
	proposed := make(map[string]int)
	stageOf := func(cq string) int {
		if s, ok := proposed[cq]; ok {
			return s
		}
		return r.nodes[cq].Stage
	}
	queue := []string{table}
	for len(queue) > 0 {
		tbl := queue[0]
		queue = queue[1:]
		for reader := range r.readers[tbl] {
			n := r.nodes[reader]
			s := 0
			for _, src := range n.Sources {
				if prod, ok := r.producer[src]; ok {
					if d := stageOf(prod) + 1; d > s {
						s = d
					}
				}
			}
			if s == stageOf(reader) {
				continue
			}
			proposed[reader] = s
			if n.Target != "" {
				if s+1 > r.maxDepth {
					return nil, fmt.Errorf("%w: %q at stage %d would exceed max depth %d",
						ErrTooDeep, reader, s+1, r.maxDepth)
				}
				queue = append(queue, n.Target)
			}
		}
	}
	return proposed, nil
}

// reachesLocked reports whether `table` equals `target` or is derived
// (transitively) from it. Caller holds r.mu. The walk is bounded by
// the acyclicity invariant the registry maintains.
func (r *Registry) reachesLocked(table, target string) bool {
	if table == target {
		return true
	}
	prod, ok := r.producer[table]
	if !ok {
		return false
	}
	for _, src := range r.nodes[prod].Sources {
		if r.reachesLocked(src, target) {
			return true
		}
	}
	return false
}

// Unregister removes a CQ from the DAG. Dropping a CQ whose target
// still has readers is the caller's error to prevent (Dependents);
// Unregister itself is unconditional so teardown paths can always
// clean up.
func (r *Registry) Unregister(cq string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	node, ok := r.nodes[cq]
	if !ok {
		return
	}
	delete(r.nodes, cq)
	if node.Target != "" {
		delete(r.producer, node.Target)
	}
	for _, src := range node.Sources {
		if set := r.readers[src]; set != nil {
			delete(set, cq)
			if len(set) == 0 {
				delete(r.readers, src)
			}
		}
	}
	// Removing a producer demotes its former readers (downstream of the
	// orphaned target only); shrinking stages can never violate the
	// depth bound, so this cannot fail.
	if node.Target != "" {
		if demoted, err := r.restageLocked(node.Target); err == nil {
			for name, s := range demoted {
				r.nodes[name].Stage = s
			}
		}
	}
}

// Dependents lists the CQs that read the given CQ's derived table
// (empty for terminal CQs). Sorted.
func (r *Registry) Dependents(cq string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	node, ok := r.nodes[cq]
	if !ok || node.Target == "" {
		return nil
	}
	return r.readersOfLocked(node.Target)
}

// TableDependents lists the CQs reading a table. Sorted.
func (r *Registry) TableDependents(table string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.readersOfLocked(table)
}

func (r *Registry) readersOfLocked(table string) []string {
	set := r.readers[table]
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for cq := range set {
		out = append(out, cq)
	}
	sort.Strings(out)
	return out
}

// Producer returns the CQ materializing a table, if any.
func (r *Registry) Producer(table string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cq, ok := r.producer[table]
	return cq, ok
}

// Stage returns the refresh stage of a registered CQ (0 if unknown).
func (r *Registry) Stage(cq string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n, ok := r.nodes[cq]; ok {
		return n.Stage
	}
	return 0
}

// MaxStage returns the highest stage currently registered: the poll
// scheduler runs stages 0..MaxStage in order, so a DAG-free registry
// (MaxStage 0) keeps the single-round fast path.
func (r *Registry) MaxStage() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	max := 0
	for _, n := range r.nodes {
		if n.Stage > max {
			max = n.Stage
		}
	}
	return max
}

// Describe snapshots every node sorted by (stage, name) — topological
// order for display and for recovery audits.
func (r *Registry) Describe() []Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		cp := *n
		cp.Sources = append([]string(nil), n.Sources...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage < out[j].Stage
		}
		return out[i].CQ < out[j].CQ
	})
	return out
}
