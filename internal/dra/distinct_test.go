package dra

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/relation"
)

func newIncDistinct(t *testing.T, f *fixture, query string) (*IncrementalDistinct, algebra.Plan) {
	t.Helper()
	plan := f.plan(t, query)
	id, err := NewIncrementalDistinct(NewEngine(), plan, f.store.Live())
	if err != nil {
		t.Fatalf("NewIncrementalDistinct: %v", err)
	}
	return id, plan
}

func distinctStepAndVerify(t *testing.T, f *fixture, id *IncrementalDistinct, plan algebra.Plan) *Result {
	t.Helper()
	ctx := f.ctx(t)
	res, err := id.Step(ctx, f.store.Now())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	f.mark()
	want, err := algebra.NewExecutor(f.store.Live()).Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !id.Result().EqualContents(want) {
		t.Fatalf("incremental distinct diverged.\nmaintained:\n%s\nfresh:\n%s", id.Result(), want)
	}
	return res
}

func TestIncrementalDistinctDuplicates(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	tids := f.insert(t, "stocks", sv("DEC", 1), sv("DEC", 1), sv("IBM", 1))
	id, plan := newIncDistinct(t, f, "SELECT DISTINCT name FROM stocks")
	f.mark()
	if id.Result().Len() != 2 {
		t.Fatalf("initial distinct = %d", id.Result().Len())
	}

	// Deleting one DEC duplicate must NOT remove DEC from the result.
	tx := f.store.Begin()
	_ = tx.Delete("stocks", tids[0])
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res := distinctStepAndVerify(t, f, id, plan)
	if res.Delta.Len() != 0 {
		t.Errorf("removing a duplicate changed the distinct result: %+v", res.Delta.Rows())
	}

	// Deleting the last DEC removes it.
	tx = f.store.Begin()
	_ = tx.Delete("stocks", tids[1])
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	res = distinctStepAndVerify(t, f, id, plan)
	if res.Deleted().Len() != 1 {
		t.Errorf("last duplicate should delete: %+v", res.Delta.Rows())
	}
}

func TestIncrementalDistinctWithPredicate(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("A", 150), sv("A", 150), sv("B", 10))
	id, plan := newIncDistinct(t, f, "SELECT DISTINCT name FROM stocks WHERE price > 100")
	f.mark()
	if id.Result().Len() != 1 {
		t.Fatalf("initial = %d", id.Result().Len())
	}
	f.insert(t, "stocks", sv("C", 500))
	res := distinctStepAndVerify(t, f, id, plan)
	if res.Inserted().Len() != 1 {
		t.Errorf("insert through predicate = %+v", res.Delta.Rows())
	}
}

func TestIncrementalDistinctRejectsNonDistinctRoot(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	f.insert(t, "stocks", sv("A", 1))
	plan := f.plan(t, "SELECT name FROM stocks")
	if _, err := NewIncrementalDistinct(NewEngine(), plan, f.store.Live()); !errors.Is(err, ErrNotIncremental) {
		t.Errorf("err = %v", err)
	}
}

// Property: maintained DISTINCT equals fresh execution over random
// histories with heavy duplication.
func TestIncrementalDistinctEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	names := []string{"A", "B", "C"} // tiny domain: lots of duplicates
	var live []relation.TID
	tx := f.store.Begin()
	for i := 0; i < 20; i++ {
		tid, _ := tx.Insert("stocks", sv(names[rng.Intn(3)], float64(rng.Intn(3)*100)))
		live = append(live, tid)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	id, plan := newIncDistinct(t, f, "SELECT DISTINCT name, price FROM stocks")
	f.mark()

	for round := 0; round < 20; round++ {
		tx := f.store.Begin()
		for op := 0; op < 4; op++ {
			switch k := rng.Intn(3); {
			case k == 0 || len(live) == 0:
				tid, _ := tx.Insert("stocks", sv(names[rng.Intn(3)], float64(rng.Intn(3)*100)))
				live = append(live, tid)
			case k == 1:
				i := rng.Intn(len(live))
				if err := tx.Update("stocks", live[i], sv(names[rng.Intn(3)], float64(rng.Intn(3)*100))); err != nil {
					t.Fatal(err)
				}
			default:
				i := rng.Intn(len(live))
				if err := tx.Delete("stocks", live[i]); err != nil {
					t.Fatal(err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		distinctStepAndVerify(t, f, id, plan)
	}
}
