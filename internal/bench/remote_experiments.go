package bench

import (
	"fmt"
	"net"
	"time"

	"github.com/diorama/continual/internal/faults"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/remote"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/workload"
)

// remoteWorld is a server plus its workload generator.
type remoteWorld struct {
	store *storage.Store
	srv   *remote.Server
	addr  string
	gen   *workload.Stocks
}

func newRemoteWorld(n int, seed int64) (*remoteWorld, error) {
	store := storage.NewStore()
	if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
		return nil, err
	}
	gen := workload.NewStocks(store, "stocks", seed, workload.DefaultMix)
	if err := gen.Seed(n); err != nil {
		return nil, err
	}
	srv := remote.NewServer(store)
	addr, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return &remoteWorld{store: store, srv: srv, addr: addr, gen: gen}, nil
}

func (w *remoteWorld) close() { _ = w.srv.Close() }

// E6 measures bytes on the wire per refresh: delta shipping (client-side
// DRA over a mirror) vs full-result shipping (server executes the query,
// ships the result), as the update volume grows (Section 5.1's network
// traffic argument).
func E6(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E6",
		Title:  "network bytes per refresh: delta shipping vs full-result shipping",
		Note:   fmt.Sprintf("base |R| = %d, sigma(price>120) (~40%% selectivity)", scale.BaseRows),
		Header: []string{"updates", "delta B", "full B", "full/delta"},
	}
	const query = "SELECT * FROM stocks WHERE price > 120"
	for _, k := range []int{1, 10, 100, 1000} {
		w, err := newRemoteWorld(scale.BaseRows, 6)
		if err != nil {
			return nil, err
		}
		client, err := remote.Dial(w.addr)
		if err != nil {
			w.close()
			return nil, err
		}
		mirror, err := remote.NewMirrorCQ(client, query)
		if err != nil {
			client.Close()
			w.close()
			return nil, err
		}
		if err := w.gen.Batch(k); err != nil {
			client.Close()
			w.close()
			return nil, err
		}
		base := client.BytesRead()
		if _, err := mirror.Refresh(); err != nil {
			client.Close()
			w.close()
			return nil, err
		}
		deltaBytes := client.BytesRead() - base

		base = client.BytesRead()
		if _, _, err := client.Query(query); err != nil {
			client.Close()
			w.close()
			return nil, err
		}
		fullBytes := client.BytesRead() - base
		_ = client.Close()
		w.close()

		ratioStr := "-"
		if deltaBytes > 0 {
			ratioStr = fmt.Sprintf("%.1fx", float64(fullBytes)/float64(deltaBytes))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k), fmt.Sprint(deltaBytes), fmt.Sprint(fullBytes), ratioStr,
		})
	}
	return t, nil
}

// E7 measures server-side work per refresh round as clients multiply:
// with client-side DRA the server only serves delta windows; with
// server-side evaluation it re-executes the query per client
// (Section 5.1: "caching the results on the client side makes the
// servers more scalable with respect to the number of clients").
func E7(scale Scale) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  "server work per refresh round vs number of clients",
		Note:   "server tuples scanned per round (query execution only; delta shipping scans none)",
		Header: []string{"clients", "srv tuples (full-shipping)", "srv tuples (delta-shipping)"},
	}
	const query = "SELECT * FROM stocks WHERE price > 120"
	for _, nClients := range []int{1, 2, 4, 8, 16} {
		w, err := newRemoteWorld(scale.BaseRows, 7)
		if err != nil {
			return nil, err
		}
		clients := make([]*remote.Client, nClients)
		mirrors := make([]*remote.MirrorCQ, nClients)
		ok := true
		for i := range clients {
			c, err := remote.Dial(w.addr)
			if err != nil {
				ok = false
				break
			}
			clients[i] = c
			m, err := remote.NewMirrorCQ(c, query)
			if err != nil {
				ok = false
				break
			}
			mirrors[i] = m
		}
		if !ok {
			w.close()
			return nil, fmt.Errorf("E7: client setup failed")
		}
		if err := w.gen.Batch(50); err != nil {
			w.close()
			return nil, err
		}

		// Full-shipping round: every client runs the query on the server.
		before := w.srv.Stats().TuplesExecuted
		for _, c := range clients {
			if _, _, err := c.Query(query); err != nil {
				w.close()
				return nil, err
			}
		}
		fullWork := w.srv.Stats().TuplesExecuted - before

		// Delta-shipping round: every client refreshes its mirror.
		before = w.srv.Stats().TuplesExecuted
		for _, m := range mirrors {
			if _, err := m.Refresh(); err != nil {
				w.close()
				return nil, err
			}
		}
		deltaWork := w.srv.Stats().TuplesExecuted - before

		for _, c := range clients {
			_ = c.Close()
		}
		w.close()
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nClients), fmt.Sprint(fullWork), fmt.Sprint(deltaWork),
		})
	}
	return t, nil
}

// E14 measures mirror refresh latency under injected network faults:
// the server sits behind a faults.Injector delivering per-op delays
// and random connection drops while a policy-driven client keeps a
// mirror fresh. The fault-tolerance claim is that drops cost only a
// bounded reconnect-and-resume (visible in the tail, not the median)
// because recovery re-pulls DeltaSince(lastTS) instead of
// re-snapshotting.
func E14(scale Scale) (*Table, error) {
	// Paper scale injects a WAN-ish 50ms per-op delay; quick scale keeps
	// CI latency by shrinking the delay, not the structure.
	delay := 50 * time.Millisecond
	if scale.BaseRows < 10_000 {
		delay = 2 * time.Millisecond
	}
	refreshes := scale.Iterations * 5
	const query = "SELECT * FROM stocks WHERE price > 120"
	t := &Table{
		ID:    "E14",
		Title: "mirror refresh latency under injected faults",
		Note: fmt.Sprintf("base |R| = %d, %d refreshes x 5 updates, server-side injection (per-op %v delay, 1%% drop)",
			scale.BaseRows, refreshes, delay),
		Header: []string{"faults", "p50 us", "p95 us", "max us", "drops", "retries", "reconnects"},
	}
	configs := []struct {
		name string
		plan faults.Plan
	}{
		{"none", faults.Plan{Seed: 14}},
		{fmt.Sprintf("%v delay", delay), faults.Plan{Seed: 14, Delay: delay}},
		{"1% drop", faults.Plan{Seed: 14, DropProb: 0.01}},
		{fmt.Sprintf("1%% drop + %v delay", delay), faults.Plan{Seed: 14, DropProb: 0.01, Delay: delay}},
	}
	for _, cfg := range configs {
		store := storage.NewStore()
		if err := store.CreateTable("stocks", workload.StockSchema()); err != nil {
			return nil, err
		}
		gen := workload.NewStocks(store, "stocks", 14, workload.DefaultMix)
		if err := gen.Seed(scale.BaseRows); err != nil {
			return nil, err
		}
		inj := faults.NewInjector(cfg.plan)
		srv := remote.NewServer(store)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr := srv.ServeListener(inj.WrapListener(ln))

		policy := remote.DefaultPolicy()
		policy.MaxAttempts = 8
		policy.BackoffBase = 5 * time.Millisecond
		policy.BackoffMax = 50 * time.Millisecond
		client, err := remote.DialPolicy(addr, policy)
		if err != nil {
			_ = srv.Close()
			return nil, err
		}
		reg := obs.NewRegistry()
		client.Instrument(reg)
		mirror, err := remote.NewMirrorCQ(client, query)
		if err != nil {
			_ = client.Close()
			_ = srv.Close()
			return nil, err
		}

		times := make([]time.Duration, 0, refreshes)
		for i := 0; i < refreshes; i++ {
			if err := gen.Batch(5); err != nil {
				_ = client.Close()
				_ = srv.Close()
				return nil, err
			}
			start := time.Now()
			if _, err := mirror.Refresh(); err != nil {
				_ = client.Close()
				_ = srv.Close()
				return nil, fmt.Errorf("E14 %s: refresh: %w", cfg.name, err)
			}
			times = append(times, time.Since(start))
		}
		_ = client.Close()
		_ = srv.Close()

		sortDurations(times)
		p50 := times[len(times)/2]
		p95 := times[(len(times)*95)/100]
		max := times[len(times)-1]
		counters := reg.Snapshot().Counters
		t.Rows = append(t.Rows, []string{
			cfg.name, us(p50), us(p95), us(max),
			fmt.Sprint(inj.Stats().Drops),
			fmt.Sprint(counters["remote.client.retries"]),
			fmt.Sprint(counters["remote.client.reconnects"]),
		})
	}
	return t, nil
}
