package bench

import "fmt"

// Runner produces one experiment table at a scale.
type Runner func(Scale) (*Table, error)

// Experiment pairs an id with its runner and one-line description.
type Experiment struct {
	ID   string
	Desc string
	Run  Runner
}

// All lists every experiment in EXPERIMENTS.md order. E1 (the Example 1
// differential relation) is a correctness test, not a measurement; see
// internal/delta TestExample1 and internal/storage TestExample1Transaction.
func All() []Experiment {
	return []Experiment{
		{"E2", "Example 2: select query, DRA vs complete re-evaluation", E2},
		{"E3", "update-fraction sweep and crossover", E3},
		{"E4", "selectivity sweep", E4},
		{"E5", "3-way join truth-table expansion", E5},
		{"E6", "network bytes: delta vs full-result shipping", E6},
		{"E7", "server scalability with clients", E7},
		{"E8", "trigger evaluation: differential vs base scan", E8},
		{"E9", "garbage collection by active delta zone", E9},
		{"E10", "epsilon bound vs refresh count", E10},
		{"E11", "append-only baseline staleness", E11},
		{"E12", "irrelevant-update refinement", E12},
		{"E13", "complete-result maintenance", E13},
		{"E14", "mirror refresh latency under injected faults", E14},
		{"E15", "parallel group refresh: throughput vs worker count", E15},
		{"E16", "prepared vs per-refresh compilation + operand index cache", E16},
		{"E17", "delta WAL: logging overhead and differential crash recovery", E17},
		{"E18", "push vs poll: commit-to-notification latency and coalescing", E18},
		{"E19", "chaos: healthy-CQ latency beside poison CQs, quarantine on/off", E19},
		{"E20", "template sharing: shared plan + parameter dispatch vs private plans", E20},
		{"E21", "columnar vs row refresh: typed kernels + pooled batch arena", E21},
		{"E22", "cascading CQs: INTO pipeline depth, latency, and delta-bound leaf cost", E22},
		{"A1", "ablation: heuristic term ordering", A1},
		{"A2", "ablation: delta compaction", A2},
		{"A3", "ablation: hash vs nested-loop term joins", A3},
		{"A4", "ablation: incremental aggregates vs Propagate fallback", A4},
		{"A5", "ablation: maintained-index join vs truth table", A5},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
