package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the write handle the log needs from a filesystem: ordered
// writes, an explicit durability barrier, and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the directory operations of the log so tests can run the
// full append/checkpoint/recover cycle against a deterministic in-memory
// filesystem with injected crashes (internal/faults.MemFS). Paths are
// passed through verbatim; implementations decide how to root them.
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// List returns the file names (not paths) inside dir, sorted.
	List(dir string) ([]string, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// SyncDir flushes directory metadata (created/renamed entries) so
	// they survive a crash.
	SyncDir(dir string) error
}

// OSFS is the real-filesystem implementation of FS.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// List implements FS.
func (OSFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS: fsync the directory fd so renames are durable.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
