package dra

import (
	"fmt"

	"github.com/diorama/continual/internal/algebra"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/sql"
	"github.com/diorama/continual/internal/vclock"
)

// IncrementalJoin maintains an SPJ join query with persistent state,
// removing the per-refresh partner scans that bound Algorithm 1's join
// gains (see experiment E5): each operand's filtered output is kept as a
// replica with mutable hash indexes on its equi-join keys, so a refresh
// costs O(Σ|Δi| × probe fan-out) instead of re-materializing unchanged
// partners per truth-table term.
//
// The evaluation uses the telescoping decomposition equivalent to the
// truth table: processing operand deltas in a fixed order with replicas
// of earlier operands already advanced,
//
//	ΔQ = Σ_i  R1' ⋈ ... ⋈ R(i-1)' ⋈ ΔRi ⋈ R(i+1) ⋈ ... ⋈ Rn
//
// which produces exactly the same net change as the 2^k−1 subset terms.
// This realizes the paper's closing future-work item ("other algorithms
// for differential or incremental evaluation of CQs") as a maintained-
// index variant.
type IncrementalJoin struct {
	engine  *Engine
	plan    algebra.Plan // full root (may include a projection)
	join    algebra.Plan // the join subtree
	ops     []*operand
	opNodes []*compiledNode // compiled operand subtrees for delta extraction
	preds   []sql.Expr
	cPreds []algebra.CompiledExpr
	masks  []uint64

	// probePlans[i] is the BFS order for joining a Δ row of operand i
	// with all partners.
	probePlans [][]probeStep

	replicas []*relation.Relation
	// indexes[j] maps "key columns within j" (hashed) to a mutable index.
	indexes []map[uint64]*relation.MutableIndex

	projItems []algebra.CompiledExpr
	outSchema relation.Schema

	result *relation.Relation
}

// probeStep joins partial rows with operand `op` by probing its index on
// buildCols with values from the partial's probeCols; a negative index
// (no equi predicate reaches op) scans the whole replica.
type probeStep struct {
	op        int
	probeCols []int // full-width columns in the accumulated row
	buildCols []int // local columns within op
}

// NewIncrementalJoin validates the plan (SPJ with at least two operands)
// and builds the replicas and indexes from the current source contents.
func NewIncrementalJoin(engine *Engine, plan algebra.Plan, src algebra.Source) (*IncrementalJoin, error) {
	root := plan
	var project *algebra.ProjectPlan
	if p, ok := root.(*algebra.ProjectPlan); ok {
		project = p
		root = p.Input
	}
	if !supportsDifferential(plan) {
		return nil, fmt.Errorf("%w: not SPJ", ErrNotIncremental)
	}
	if _, ok := root.(*algebra.JoinPlan); !ok {
		return nil, fmt.Errorf("%w: root is %T, need a join", ErrNotIncremental, root)
	}
	ops, preds, err := flatten(root)
	if err != nil {
		return nil, err
	}
	if len(ops) < 2 {
		return nil, fmt.Errorf("%w: single operand", ErrNotIncremental)
	}
	opNodes := make([]*compiledNode, len(ops))
	for i, op := range ops {
		opNodes[i], err = compilePlan(op.plan)
		if err != nil {
			return nil, err
		}
	}

	ij := &IncrementalJoin{
		engine:  engine,
		plan:    plan,
		join:    root,
		ops:     ops,
		opNodes: opNodes,
		preds:   preds,
	}
	ij.cPreds, ij.masks, err = compilePreds(preds, root.Schema(), ops)
	if err != nil {
		return nil, err
	}
	if err := ij.buildProbePlans(root.Schema()); err != nil {
		return nil, err
	}
	if project != nil {
		ij.outSchema = project.Schema()
		for _, it := range project.Items {
			ce, err := algebra.Compile(it.Expr, root.Schema())
			if err != nil {
				return nil, err
			}
			ij.projItems = append(ij.projItems, ce)
		}
	} else {
		ij.outSchema = root.Schema()
	}

	// Materialize replicas and indexes.
	ij.replicas = make([]*relation.Relation, len(ops))
	ij.indexes = make([]map[uint64]*relation.MutableIndex, len(ops))
	for i, op := range ops {
		rel, err := algebra.NewExecutor(src).Execute(op.plan)
		if err != nil {
			return nil, err
		}
		ij.replicas[i] = rel
		ij.indexes[i] = make(map[uint64]*relation.MutableIndex)
	}
	for i := range ops {
		for _, cols := range ij.neededKeySets(i) {
			ix := relation.NewMutableIndex(cols)
			for _, t := range ij.replicas[i].Tuples() {
				ix.Add(t)
			}
			ij.indexes[i][keySetHash(cols)] = ix
		}
	}

	// Initial result.
	initial, err := algebra.NewExecutor(src).Execute(plan)
	if err != nil {
		return nil, err
	}
	ij.result = initial
	return ij, nil
}

// neededKeySets lists the local key-column sets under which operand i is
// probed by any probe plan.
func (ij *IncrementalJoin) neededKeySets(i int) [][]int {
	seen := make(map[uint64][]int)
	for _, plan := range ij.probePlans {
		for _, step := range plan {
			if step.op == i && len(step.buildCols) > 0 {
				seen[keySetHash(step.buildCols)] = step.buildCols
			}
		}
	}
	out := make([][]int, 0, len(seen))
	for _, cols := range seen {
		out = append(out, cols)
	}
	return out
}

func keySetHash(cols []int) uint64 {
	vs := make([]relation.Value, len(cols))
	for i, c := range cols {
		vs[i] = relation.Int(int64(c))
	}
	return relation.HashValues(vs)
}

// buildProbePlans computes, for each source operand, a BFS order over the
// equi-predicate graph covering every other operand. Operands with no
// equi connection to the growing set are cross-joined (empty key sets).
func (ij *IncrementalJoin) buildProbePlans(schema relation.Schema) error {
	n := len(ij.ops)
	ij.probePlans = make([][]probeStep, n)
	for src := 0; src < n; src++ {
		visited := make([]bool, n)
		visited[src] = true
		var filled uint64 = 1 << uint(src)
		var plan []probeStep
		for count := 1; count < n; count++ {
			found := false
			// Prefer an operand connected by an equi predicate.
			for pi, p := range ij.preds {
				if !isEquiConjunct(p) {
					continue
				}
				m := ij.masks[pi]
				for j := 0; j < n; j++ {
					jbit := uint64(1) << uint(j)
					if visited[j] || m&jbit == 0 || m&filled == 0 || m&^(filled|jbit) != 0 {
						continue
					}
					be := p.(*sql.BinaryExpr)
					li, _ := schema.ColIndex(be.L.(*sql.ColumnRef).Name)
					ri, _ := schema.ColIndex(be.R.(*sql.ColumnRef).Name)
					inJ := func(c int) bool { return c >= ij.ops[j].lo && c < ij.ops[j].hi }
					step := probeStep{op: j}
					switch {
					case inJ(li) && !inJ(ri):
						step.probeCols = []int{ri}
						step.buildCols = []int{li - ij.ops[j].lo}
					case inJ(ri) && !inJ(li):
						step.probeCols = []int{li}
						step.buildCols = []int{ri - ij.ops[j].lo}
					default:
						continue
					}
					plan = append(plan, step)
					visited[j] = true
					filled |= jbit
					found = true
					break
				}
				if found {
					break
				}
			}
			if found {
				continue
			}
			// Fall back to a cross step for the first unvisited operand.
			for j := 0; j < n; j++ {
				if !visited[j] {
					plan = append(plan, probeStep{op: j})
					visited[j] = true
					filled |= 1 << uint(j)
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("dra: incremental join: probe plan construction stalled")
			}
		}
		ij.probePlans[src] = plan
	}
	return nil
}

// Result returns the maintained query result. Callers must not mutate it.
func (ij *IncrementalJoin) Result() *relation.Relation { return ij.result }

// Step folds the update windows into the replicas and result.
func (ij *IncrementalJoin) Step(ctx *Context, execTS vclock.Timestamp) (*Result, error) {
	joinSchema := ij.join.Schema()
	width := joinSchema.Len()
	var st Stats
	var outRows []delta.SignedRow

	for i := range ij.ops {
		din, err := ij.engine.signedDelta(ij.opNodes[i], ctx, execTS, &st)
		if err != nil {
			return nil, err
		}
		for _, r := range din.Rows {
			// Seed a partial with the delta row.
			vals := make([]relation.Value, width)
			copy(vals[ij.ops[i].lo:ij.ops[i].hi], r.Values)
			tids := make([]relation.TID, len(ij.ops))
			tids[i] = r.TID
			cur := []*partial{{vals: vals, sign: r.Sign, tids: tids}}
			filled := uint64(1) << uint(i)
			applied := make([]bool, len(ij.preds))
			cur, err = ij.engine.applyReady(cur, filled, applied, ij.cPreds, ij.masks)
			if err != nil {
				return nil, err
			}

			for _, step := range ij.probePlans[i] {
				if len(cur) == 0 {
					break
				}
				var next []*partial
				op := ij.ops[step.op]
				if len(step.buildCols) > 0 {
					ix := ij.indexes[step.op][keySetHash(step.buildCols)]
					key := make([]relation.Value, len(step.probeCols))
					for _, p := range cur {
						for ki, c := range step.probeCols {
							key[ki] = p.vals[c]
						}
						for _, match := range ix.Probe(key) {
							next = append(next, mergeReplicaTuple(p, match, op, step.op))
						}
					}
					// The probe pred is re-verified by applyReady below
					// together with any other newly resolvable conjunct
					// (unlike evalTerm's hash step, only one equi pred was
					// used as the key here).
				} else {
					for _, p := range cur {
						for _, match := range ij.replicas[step.op].Tuples() {
							next = append(next, mergeReplicaTuple(p, match, op, step.op))
						}
					}
				}
				filled |= 1 << uint(step.op)
				cur, err = ij.engine.applyReady(next, filled, applied, ij.cPreds, ij.masks)
				if err != nil {
					return nil, err
				}
			}

			for _, p := range cur {
				tid := p.tids[0]
				for t := 1; t < len(p.tids); t++ {
					tid = relation.CombineTIDs(tid, p.tids[t])
				}
				outRows = append(outRows, delta.SignedRow{TID: tid, Values: p.vals, Sign: p.sign})
			}
		}

		// Advance replica i and its indexes AFTER processing Δi, so later
		// operands' deltas see it at the new state and earlier ones saw it
		// at the old state (the telescoping invariant).
		for _, r := range din.Rows {
			tup := relation.Tuple{TID: r.TID, Values: r.Values}
			if r.Sign < 0 {
				_ = ij.replicas[i].Delete(r.TID)
				for _, ix := range ij.indexes[i] {
					ix.Remove(tup)
				}
			} else {
				_ = ij.replicas[i].Upsert(tup)
				for _, ix := range ij.indexes[i] {
					ix.Add(tup)
				}
			}
		}
	}

	// Optional projection.
	if ij.projItems != nil {
		projected := make([]delta.SignedRow, 0, len(outRows))
		for _, r := range outRows {
			vals := make([]relation.Value, len(ij.projItems))
			for ci, ce := range ij.projItems {
				v, err := ce.Eval(relation.Tuple{TID: r.TID, Values: r.Values})
				if err != nil {
					return nil, fmt.Errorf("dra: incremental join projection: %w", err)
				}
				vals[ci] = v
			}
			projected = append(projected, delta.SignedRow{TID: r.TID, Values: vals, Sign: r.Sign})
		}
		outRows = projected
	}

	net := netSigned(&delta.Signed{Schema: ij.outSchema, Rows: outRows})
	delta.ApplySigned(ij.result, net)
	res := &Result{
		Signed: net,
		Delta:  net.ToDeltaNetted(execTS),
		ExecTS: execTS,
		Stats:  st,
	}
	res.materialized = ij.result
	return res, nil
}

// mergeReplicaTuple extends a partial with a replica tuple of operand op.
func mergeReplicaTuple(p *partial, t relation.Tuple, op *operand, opIdx int) *partial {
	vals := make([]relation.Value, len(p.vals))
	copy(vals, p.vals)
	copy(vals[op.lo:op.hi], t.Values)
	tids := make([]relation.TID, len(p.tids))
	copy(tids, p.tids)
	tids[opIdx] = t.TID
	return &partial{vals: vals, sign: p.sign, tids: tids}
}
