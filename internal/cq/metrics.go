package cq

import (
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/sql"
)

// metrics is the manager's bundle of obs handles, resolved once from
// Config.Metrics at construction. A nil *metrics (Config.Metrics == nil)
// keeps every hook down to a nil check.
type metrics struct {
	registered    *obs.Gauge     // cq.registered: live (non-terminated) CQs
	polls         *obs.Counter   // cq.polls
	triggerEvals  *obs.Counter   // cq.trigger_evals: trigger conditions tested
	firesEvery    *obs.Counter   // cq.trigger_fires.every
	firesUpdates  *obs.Counter   // cq.trigger_fires.updates
	firesEpsilon  *obs.Counter   // cq.trigger_fires.epsilon
	firesDefault  *obs.Counter   // cq.trigger_fires.default
	refreshes     *obs.Counter   // cq.refreshes
	// batchesPushed counts operand windows served by routed commit
	// images (zero conversion); batchesWindow counts the ones converted
	// through the shared window cache.
	batchesPushed *obs.Counter // cq.columnar.pushed
	batchesWindow *obs.Counter // cq.columnar.window
	refreshNS     *obs.Histogram // cq.refresh_ns
	refreshErrors *obs.Counter   // cq.refresh.errors: per-CQ failures isolated by Poll
	roundNS       *obs.Histogram // cq.round_ns: wall time of one group-refresh round
	roundWorkers  *obs.Gauge     // cq.round_workers: worker pool size of the last round
	notifications *obs.Counter   // cq.notifications: delivered to subscribers
	drops         *obs.Counter   // cq.subscriber_drops: full-buffer discards
	// notifDropped counts notifications discarded because a subscriber
	// buffer was full — the same event cq.subscriber_drops counts, but
	// under the cq.notifications.* namespace so delivered/dropped read
	// as a pair; the public Subscription layer (continual) feeds its
	// own channel drops into this counter too, which subscriber_drops
	// (manager-internal buffers only) never saw.
	notifDropped *obs.Counter // cq.notifications.dropped
	queueDepth   *obs.Gauge   // cq.notify_queue_depth: buffered, undrained
	gcReclaimed  *obs.Counter // cq.gc_reclaimed_rows
	terminated   *obs.Counter // cq.terminated: Stop conditions reached
	// maintFallbacks counts registrations where a forced refresh
	// strategy could not run on the CQ's plan and the manager fell back
	// to the cost model (formerly a silent fallback).
	maintFallbacks *obs.Counter // cq.maintainer.fallbacks

	// Guard layer (overload protection and self-healing).
	refreshPanics   *obs.Counter // cq.refresh.panics: refreshes (or callbacks' refreshes) that panicked
	refreshTimeouts *obs.Counter // cq.refresh.timeouts: refreshes abandoned past the budget
	refreshLate     *obs.Counter // cq.refresh.late: abandoned refreshes that eventually finished
	quarantines     *obs.Counter // cq.quarantines: breaker open transitions
	quarantineSkips *obs.Counter // cq.quarantine.skips: rounds/dispatches skipped while quarantined
	// subscriberPanics counts callback subscribers disconnected because
	// their callback panicked; disconnects counts channel subscribers
	// detached by the Disconnect backpressure policy plus those panics.
	subscriberPanics *obs.Counter // cq.subscriber_panics
	disconnects      *obs.Counter // cq.subscriber_disconnects
	// emergencyGC counts watermark-triggered garbage collections (the
	// store's pressure hook), as opposed to scheduled AutoGC.
	emergencyGC       *obs.Counter // cq.gc.emergency
	healthHealthy     *obs.Gauge   // cq.health.healthy
	healthProbation   *obs.Gauge   // cq.health.probation
	healthQuarantined *obs.Gauge   // cq.health.quarantined

	// Template sharing (Config.ShareTemplates).
	templates       *obs.Gauge   // cq.templates: live template groups
	templateMembers *obs.Gauge   // cq.template.members: CQs attached to a group
	sharedRegs      *obs.Counter // cq.template.shared_registrations
	templateSteps   *obs.Counter // cq.template.steps: shared plan evaluations
	templateStepNS  *obs.Histogram
	// Dispatch economics: rows are template delta rows fanned out,
	// candidates the members the index surfaced, matches the members
	// that verified — candidates/matches close to 1 is the O(matches)
	// goal.
	templateDispatchRows *obs.Counter // cq.template.dispatch_rows
	templateCandidates   *obs.Counter // cq.template.dispatch_candidates
	templateMatches      *obs.Counter // cq.template.dispatch_matches

	// Cascades (SELECT ... INTO): materializeCommits counts derived-
	// table commits (reconciliations that staged nothing commit nothing
	// and are not counted); materializeRows the operations they carried.
	materializeCommits *obs.Counter // cq.materialize.commits
	materializeRows    *obs.Counter // cq.materialize.rows

	traces *obs.TraceLog // cq.refresh spans
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		registered:     reg.Gauge("cq.registered"),
		polls:          reg.Counter("cq.polls"),
		triggerEvals:   reg.Counter("cq.trigger_evals"),
		firesEvery:     reg.Counter("cq.trigger_fires.every"),
		firesUpdates:   reg.Counter("cq.trigger_fires.updates"),
		firesEpsilon:   reg.Counter("cq.trigger_fires.epsilon"),
		firesDefault:   reg.Counter("cq.trigger_fires.default"),
		refreshes:      reg.Counter("cq.refreshes"),
		batchesPushed:  reg.Counter("cq.columnar.pushed"),
		batchesWindow:  reg.Counter("cq.columnar.window"),
		refreshNS:      reg.Histogram("cq.refresh_ns"),
		refreshErrors:  reg.Counter("cq.refresh.errors"),
		roundNS:        reg.Histogram("cq.round_ns"),
		roundWorkers:   reg.Gauge("cq.round_workers"),
		notifications:  reg.Counter("cq.notifications"),
		drops:          reg.Counter("cq.subscriber_drops"),
		notifDropped:   reg.Counter("cq.notifications.dropped"),
		queueDepth:     reg.Gauge("cq.notify_queue_depth"),
		gcReclaimed:    reg.Counter("cq.gc_reclaimed_rows"),
		terminated:     reg.Counter("cq.terminated"),
		maintFallbacks: reg.Counter("cq.maintainer.fallbacks"),

		refreshPanics:     reg.Counter("cq.refresh.panics"),
		refreshTimeouts:   reg.Counter("cq.refresh.timeouts"),
		refreshLate:       reg.Counter("cq.refresh.late"),
		quarantines:       reg.Counter("cq.quarantines"),
		quarantineSkips:   reg.Counter("cq.quarantine.skips"),
		subscriberPanics:  reg.Counter("cq.subscriber_panics"),
		disconnects:       reg.Counter("cq.subscriber_disconnects"),
		emergencyGC:       reg.Counter("cq.gc.emergency"),
		healthHealthy:     reg.Gauge("cq.health.healthy"),
		healthProbation:   reg.Gauge("cq.health.probation"),
		healthQuarantined: reg.Gauge("cq.health.quarantined"),

		templates:            reg.Gauge("cq.templates"),
		templateMembers:      reg.Gauge("cq.template.members"),
		sharedRegs:           reg.Counter("cq.template.shared_registrations"),
		templateSteps:        reg.Counter("cq.template.steps"),
		templateStepNS:       reg.Histogram("cq.template.step_ns"),
		templateDispatchRows: reg.Counter("cq.template.dispatch_rows"),
		templateCandidates:   reg.Counter("cq.template.dispatch_candidates"),
		templateMatches:      reg.Counter("cq.template.dispatch_matches"),

		materializeCommits: reg.Counter("cq.materialize.commits"),
		materializeRows:    reg.Counter("cq.materialize.rows"),

		traces: reg.Traces(),
	}
}

// fireCounter maps a trigger kind to its per-kind fire counter.
func (m *metrics) fireCounter(kind sql.TriggerKind) *obs.Counter {
	switch kind {
	case sql.TriggerEvery:
		return m.firesEvery
	case sql.TriggerUpdates:
		return m.firesUpdates
	case sql.TriggerEpsilon:
		return m.firesEpsilon
	default:
		return m.firesDefault
	}
}
