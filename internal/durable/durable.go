// Package durable binds the storage engine, the CQ manager, and the
// write-ahead log into a crash-recoverable system.
//
// The contract follows the paper's differential spirit: persistence
// records DELTAS, not states. Every committed transaction appends its
// delta to the WAL before the store applies it; every delivered CQ
// refresh appends its result delta before the notification goes out.
// Recovery therefore is itself a differential evaluation — the latest
// checkpoint restores a consistent cut, the WAL tail replays the
// deltas past it, and each resumed CQ picks up at its last logged
// execution so the first post-crash Poll computes an ordinary
// differential catch-up over the replayed window.
package durable

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/diorama/continual/internal/cq"
	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/obs"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
	"github.com/diorama/continual/internal/wal"
)

// Options configures a durable system.
type Options struct {
	// Dir is the data directory holding WAL segments and checkpoints.
	Dir string
	// FS overrides the filesystem (fault injection in tests); nil uses
	// the real one.
	FS wal.FS
	// Fsync is the WAL durability policy (default FsyncAlways).
	Fsync wal.FsyncPolicy
	// SyncEvery is the FsyncInterval period (default 50ms).
	SyncEvery time.Duration
	// CheckpointEvery triggers an automatic background checkpoint after
	// that many committed transactions. 0 means manual checkpoints only
	// (Checkpoint / Close).
	CheckpointEvery int
	// Metrics receives wal.* and recovery instruments when non-nil.
	Metrics *obs.Registry
	// Watermarks bounds retained differential state (degraded mode):
	// see storage.Watermarks. Applied before recovery, so a restart
	// into an already-overloaded store reports overload immediately.
	Watermarks storage.Watermarks
	// CQ configures the manager. The zero value means complete
	// re-evaluation with no auto-GC; callers wanting the engine
	// defaults should set UseDRA and AutoGC explicitly (continual.Open*
	// does).
	CQ cq.Config
}

// RecoveryInfo summarizes what Open rebuilt.
type RecoveryInfo struct {
	// FromCheckpoint reports whether a checkpoint seeded the state.
	FromCheckpoint bool
	// Records is the number of WAL records replayed past the cut.
	Records int
	// Torn is the number of segments that ended in a torn record
	// (at most one per crash, always the final segment written).
	Torn int
	// CQs is the number of continual queries resumed.
	CQs int
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// HasState reports whether recovery found anything at all — used by
// cqd to refuse re-seeding an existing data directory.
func (r RecoveryInfo) HasState() bool {
	return r.FromCheckpoint || r.Records > 0
}

// System is a store + CQ manager pair whose committed state survives
// crashes via the WAL.
type System struct {
	Store    *storage.Store
	Manager  *cq.Manager
	Recovery RecoveryInfo

	log     *wal.Log
	every   int
	commits atomic.Int64
	ckptMu  sync.Mutex // serializes checkpoint construction
	inAuto  atomic.Bool
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// Open recovers (or initializes) the data directory and returns a
// running system. Recovery order: restore the newest loadable
// checkpoint, replay the WAL tail through the store and the CQ
// registry fold, open a fresh WAL segment, wire the write-ahead sinks,
// then resume every surviving CQ.
func Open(opts Options) (*System, error) {
	fs := opts.FS
	if fs == nil {
		fs = wal.OSFS{}
	}
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("durable: create %s: %w", opts.Dir, err)
	}
	store := storage.NewStore()
	if opts.Metrics != nil {
		store.Instrument(opts.Metrics)
	}
	store.SetWatermarks(opts.Watermarks)

	// The registry fold: checkpoint entries seed it, then KindCQRegister
	// / KindCQExec / KindCQDrop records move it forward in log order.
	reg := make(map[string]*wal.CQEntry)
	var order []string
	start := time.Now()
	res, err := wal.Scan(fs, opts.Dir, func(ck *wal.Checkpoint) error {
		if err := store.Restore(storage.State{TS: ck.TS, NextTID: ck.NextTID, Tables: ck.Tables}); err != nil {
			return fmt.Errorf("restore checkpoint: %w", err)
		}
		for i := range ck.CQs {
			e := ck.CQs[i]
			reg[e.Name] = &e
			order = append(order, e.Name)
		}
		return nil
	}, func(rec *wal.Record) error {
		switch rec.Kind {
		case wal.KindCreateTable:
			return store.CreateTable(rec.Table, rec.Schema)
		case wal.KindDropTable:
			return store.DropTable(rec.Table)
		case wal.KindTx:
			return store.ApplyReplay(rec.TS, rec.Rows)
		case wal.KindCQRegister:
			e := *rec.CQ
			if _, seen := reg[e.Name]; !seen {
				order = append(order, e.Name)
			}
			reg[e.Name] = &e
		case wal.KindCQExec:
			e := reg[rec.Name]
			if e == nil {
				return fmt.Errorf("wal: execution record for unregistered cq %q", rec.Name)
			}
			e.Seq = rec.Seq
			e.LastExec = rec.ExecTS
			e.Terminated = rec.Terminated
			if e.Result != nil {
				if err := foldChange(e.Result, rec.Change); err != nil {
					// The materialized result can't absorb this delta;
					// drop it and let Resume reseed by evaluation at
					// LastExec. Recovery stays correct, just slower.
					e.Result = nil
				}
			}
		case wal.KindCQDrop:
			delete(reg, rec.Name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("durable: recover %s: %w", opts.Dir, err)
	}

	log, err := wal.Open(opts.Dir, wal.Options{
		FS:        fs,
		Fsync:     opts.Fsync,
		SyncEvery: opts.SyncEvery,
		Metrics:   opts.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}

	s := &System{
		Store: store,
		log:   log,
		every: opts.CheckpointEvery,
	}
	// Write-ahead wiring: the store logs commits and DDL through us,
	// the manager journals registry changes and executions. Replay is
	// done, so nothing gets double-logged.
	store.SetWALSink(s)
	cfg := opts.CQ
	if cfg.Metrics == nil {
		cfg.Metrics = opts.Metrics
	}
	cfg.Journal = s
	s.Manager = cq.NewManagerConfig(store, cfg)

	resumed := 0
	for _, name := range order {
		e := reg[name]
		if e == nil {
			continue // dropped later in the log
		}
		if err := s.Manager.Resume(*e); err != nil {
			log.Close()
			return nil, fmt.Errorf("durable: resume: %w", err)
		}
		resumed++
	}

	s.Recovery = RecoveryInfo{
		FromCheckpoint: res.Checkpoint != nil,
		Records:        res.Records,
		Torn:           res.Torn,
		CQs:            resumed,
		Elapsed:        time.Since(start),
	}
	if opts.Metrics != nil {
		opts.Metrics.Gauge("wal.recovery_ns").Set(s.Recovery.Elapsed.Nanoseconds())
		opts.Metrics.Gauge("wal.records_replayed").Set(int64(res.Records))
	}
	return s, nil
}

// foldChange applies one execution's result delta to a materialized
// result relation.
func foldChange(rel *relation.Relation, rows []delta.Row) error {
	if len(rows) == 0 {
		return nil
	}
	d := delta.New(rel.Schema())
	for _, r := range rows {
		if err := d.Append(r); err != nil {
			return err
		}
	}
	return d.Apply(rel)
}

// --- write-ahead sinks -------------------------------------------------

// AppendTx implements storage.WALSink: called under the store lock
// before the commit applies, so an error leaves the store untouched.
func (s *System) AppendTx(ts vclock.Timestamp, rows []wal.TxRow) error {
	if err := s.log.AppendTx(ts, rows); err != nil {
		return err
	}
	s.noteCommit()
	return nil
}

func (s *System) AppendCreateTable(name string, schema relation.Schema) error {
	return s.log.AppendCreateTable(name, schema)
}

func (s *System) AppendDropTable(name string) error {
	return s.log.AppendDropTable(name)
}

// CQRegistered implements cq.Journal.
func (s *System) CQRegistered(e wal.CQEntry) error { return s.log.AppendCQRegister(&e) }

// CQExecuted implements cq.Journal: logged before the refresh mutates
// the instance or notifies anyone, making delivery at-most-once across
// crashes.
func (s *System) CQExecuted(name string, seq int, ts vclock.Timestamp, change *delta.Delta, terminated bool) error {
	var rows []delta.Row
	if change != nil {
		rows = change.Rows()
	}
	return s.log.AppendCQExec(name, seq, ts, rows, terminated)
}

// CQDropped implements cq.Journal.
func (s *System) CQDropped(name string) error { return s.log.AppendCQDrop(name) }

// noteCommit counts committed transactions toward the automatic
// checkpoint threshold. It runs under the store lock, so the actual
// checkpoint is taken on a fresh goroutine (checkpointing needs the
// manager and store locks in front-door order).
func (s *System) noteCommit() {
	if s.every <= 0 || s.closed.Load() {
		return
	}
	if s.commits.Add(1) < int64(s.every) {
		return
	}
	if !s.inAuto.CompareAndSwap(false, true) {
		return // one auto-checkpoint at a time; the counter keeps rising
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.inAuto.Store(false)
		// Best effort: a failed background checkpoint leaves the log
		// longer but the system correct; the next threshold retries.
		_ = s.Checkpoint()
	}()
}

// Checkpoint atomically snapshots store + CQ registry + log position
// and writes it durably. Concurrent calls serialize; each produces a
// full, self-sufficient checkpoint.
func (s *System) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	var st storage.State
	var seg uint64
	// Three-deep cut: pin every CQ instance, then the store, then
	// rotate the log — when cut returns, store state, CQ bookkeeping
	// and the segment boundary all describe the same instant.
	entries, err := s.Manager.SnapshotRegistry(func() error {
		var err error
		st, err = s.Store.CheckpointState(func() error {
			var err error
			seg, err = s.log.Rotate()
			return err
		})
		return err
	})
	if err != nil {
		return fmt.Errorf("durable: checkpoint cut: %w", err)
	}
	ck := &wal.Checkpoint{Seg: seg, TS: st.TS, NextTID: st.NextTID, Tables: st.Tables, CQs: entries}
	if err := s.log.WriteCheckpoint(ck); err != nil {
		return fmt.Errorf("durable: write checkpoint: %w", err)
	}
	s.commits.Store(0)
	return nil
}

// Close takes a final checkpoint (so the next Open replays nothing),
// closes the manager, and closes the log. Safe to call once.
func (s *System) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.wg.Wait()
	// Drain the push queue first so every pending commit-driven refresh
	// executes (and journals) before the final checkpoint: the
	// checkpoint then covers those executions and the next open replays
	// nothing. No-op when push is disabled.
	s.Manager.FlushPush()
	ckErr := s.Checkpoint()
	mgErr := s.Manager.Close()
	lgErr := s.log.Close()
	if ckErr != nil {
		return ckErr
	}
	if mgErr != nil {
		return mgErr
	}
	return lgErr
}
