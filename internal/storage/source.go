package storage

import (
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

// LiveView adapts the store's current contents to the query executor's
// Source interface (satisfied structurally; storage does not import the
// algebra package). Relations returned are the live ones — callers must
// not mutate them.
type LiveView struct{ s *Store }

// Live returns a Source view of the current contents.
func (s *Store) Live() LiveView { return LiveView{s: s} }

// Relation implements the executor's Source contract.
func (v LiveView) Relation(table string) (*relation.Relation, error) {
	return v.s.Contents(table)
}

// Schema implements the planner's Catalog contract.
func (v LiveView) Schema(table string) (relation.Schema, error) {
	return v.s.Schema(table)
}

// HistoricView adapts a point-in-time reconstruction to the Source
// interface. Each Relation call reconstructs the table as of the view's
// timestamp (the state after the CQ's last execution, DRA input (ii)).
type HistoricView struct {
	s  *Store
	ts vclock.Timestamp
}

// At returns a Source view of the store as of logical time ts.
func (s *Store) At(ts vclock.Timestamp) HistoricView { return HistoricView{s: s, ts: ts} }

// Relation implements the executor's Source contract.
func (v HistoricView) Relation(table string) (*relation.Relation, error) {
	return v.s.SnapshotAt(table, v.ts)
}

// Schema implements the planner's Catalog contract.
func (v HistoricView) Schema(table string) (relation.Schema, error) {
	return v.s.Schema(table)
}
