package storage

import (
	"github.com/diorama/continual/internal/obs"
)

// metrics is the store's bundle of obs handles, resolved once at
// Instrument time so commit-path updates are plain atomic adds.
type metrics struct {
	reg          *obs.Registry
	commits      *obs.Counter          // storage.commits: committed transactions
	commitRows   *obs.Counter          // storage.commit_rows: delta rows appended
	deltaTotal   *obs.Gauge            // storage.delta_len: retained delta rows, all tables
	snapshots    *obs.Counter          // storage.snapshot_reconstructions
	staleWindow  *obs.Counter          // storage.stale_window_hits: ErrStaleWindow returns
	gcRows       *obs.Counter          // storage.gc_rows_collected
	gcRuns       *obs.Counter          // storage.gc_runs
	windowHits   *obs.Counter          // storage.window_cache.hits: shared-window fetches served from a round cache
	windowMisses *obs.Counter          // storage.window_cache.misses: shared-window fetches that hit the store
	tables       *obs.Gauge            // storage.tables
	commitNS     *obs.Histogram        // storage.commit_ns
	perTable     map[string]*obs.Gauge // storage.delta_len.<table>

	overloadLevel   *obs.Gauge   // storage.overload.level: 0 none, 1 soft, 2 hard
	overloadRejects *obs.Counter // storage.overload.rejects: commits refused in hard mode
	softTrips       *obs.Counter // storage.overload.soft_trips
	hardTrips       *obs.Counter // storage.overload.hard_trips
}

// Instrument attaches the store to a metrics registry. Call it once,
// right after NewStore and before the store is shared; with a nil
// registry the store stays uninstrumented and every hook is a nil check.
func (s *Store) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m := &metrics{
		reg:          reg,
		commits:      reg.Counter("storage.commits"),
		commitRows:   reg.Counter("storage.commit_rows"),
		deltaTotal:   reg.Gauge("storage.delta_len"),
		snapshots:    reg.Counter("storage.snapshot_reconstructions"),
		staleWindow:  reg.Counter("storage.stale_window_hits"),
		gcRows:       reg.Counter("storage.gc_rows_collected"),
		gcRuns:       reg.Counter("storage.gc_runs"),
		windowHits:   reg.Counter("storage.window_cache.hits"),
		windowMisses: reg.Counter("storage.window_cache.misses"),
		tables:       reg.Gauge("storage.tables"),
		commitNS:     reg.Histogram("storage.commit_ns"),
		perTable:     make(map[string]*obs.Gauge),

		overloadLevel:   reg.Gauge("storage.overload.level"),
		overloadRejects: reg.Counter("storage.overload.rejects"),
		softTrips:       reg.Counter("storage.overload.soft_trips"),
		hardTrips:       reg.Counter("storage.overload.hard_trips"),
	}
	total := int64(0)
	for name, t := range s.tables {
		g := reg.Gauge("storage.delta_len." + name)
		g.Set(int64(t.dlt.Len()))
		m.perTable[name] = g
		total += int64(t.dlt.Len())
	}
	m.deltaTotal.Set(total)
	m.tables.Set(int64(len(s.tables)))
	s.met = m
}

// tableGauge returns (creating if needed) the per-table delta-length
// gauge. Caller holds s.mu.
func (m *metrics) tableGauge(name string) *obs.Gauge {
	g, ok := m.perTable[name]
	if !ok {
		g = m.reg.Gauge("storage.delta_len." + name)
		m.perTable[name] = g
	}
	return g
}
