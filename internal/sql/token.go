// Package sql implements the CQL dialect of the reproduction: a lexer and
// recursive-descent parser for select-project-join queries, DML, DDL and
// the continual-query definition statement.
//
// The dialect covers what the paper needs and no more:
//
//	SELECT [DISTINCT] cols|* FROM t [alias] [, t2 | JOIN t2 ON e]... [WHERE e] [GROUP BY cols]
//	INSERT INTO t VALUES (e, ...)[, (e, ...)]...
//	UPDATE t SET c = e [, c = e]... [WHERE e]
//	DELETE FROM t [WHERE e]
//	CREATE TABLE t (c TYPE, ...)
//	CREATE CONTINUAL QUERY name AS select
//	       [TRIGGER EVERY n | TRIGGER EPSILON n ON expr | TRIGGER UPDATES n]
//	       [MODE DIFFERENTIAL|COMPLETE|DELETIONS]
//	       [STOP AFTER n]
//
// Aggregates SUM/COUNT/AVG/MIN/MAX are supported in the projection list
// (the checking-account example of Section 5.3 is `SELECT SUM(amount)
// FROM CheckingAccounts`).
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota + 1
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokOp // operators and punctuation
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
	Line int
	Col  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords of the dialect, stored uppercase.
var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "FROM": true, "WHERE": true,
	"GROUP": true, "BY": true, "HAVING": true, "AS": true,
	"ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"JOIN": true, "INNER": true, "ON": true,
	"AND": true, "OR": true, "NOT": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true,
	"CONTINUAL": true, "QUERY": true,
	"TRIGGER": true, "EVERY": true, "EPSILON": true, "UPDATES": true,
	"MODE": true, "DIFFERENTIAL": true, "COMPLETE": true, "DELETIONS": true,
	"STOP": true, "AFTER": true, "NEVER": true,
	"INT": true, "FLOAT": true, "STRING": true, "BOOL": true,
	"TRUE": true, "FALSE": true, "NULL": true,
	"SUM": true, "COUNT": true, "AVG": true, "MIN": true, "MAX": true,
	"ABS": true,
}

// IsKeyword reports whether the uppercase word is a reserved keyword.
func IsKeyword(upper string) bool { return keywords[upper] }
