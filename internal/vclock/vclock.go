// Package vclock provides the logical clock used for all algorithm-visible
// timestamps in the continual query system.
//
// The paper (Section 4.1) requires only "a system clock, or any other
// monotonically increasing source of timestamps". Using a logical counter
// instead of wall-clock time makes every algorithm in this repository
// deterministic and therefore testable: two runs of the same update
// sequence produce identical differential relations.
package vclock

import "sync"

// Timestamp is a point on the logical time line. Timestamp 0 is "before
// everything"; the first tick returns 1.
type Timestamp uint64

// Clock is a monotonically increasing logical clock. The zero value is
// ready to use.
type Clock struct {
	mu  sync.Mutex
	now Timestamp
}

// New returns a clock whose first Tick yields 1.
func New() *Clock { return &Clock{} }

// Tick advances the clock and returns the new timestamp.
func (c *Clock) Tick() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now++
	return c.now
}

// Now returns the current timestamp without advancing the clock.
func (c *Clock) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AdvanceTo moves the clock forward to at least t. It never moves the
// clock backwards.
func (c *Clock) AdvanceTo(t Timestamp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}
