package wal

import (
	"time"

	"github.com/diorama/continual/internal/obs"
)

// metrics bundles the wal.* instruments. A nil *metrics is valid and
// records nothing, so the log is usable without a registry.
type metrics struct {
	appendNS     *obs.Histogram
	fsyncNS      *obs.Histogram
	checkpointNS *obs.Histogram
	bytes        *obs.Counter
	recoveryNS   *obs.Gauge
	replayed     *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	return &metrics{
		appendNS:     reg.Histogram("wal.append_ns"),
		fsyncNS:      reg.Histogram("wal.fsync_ns"),
		checkpointNS: reg.Histogram("wal.checkpoint_ns"),
		bytes:        reg.Counter("wal.bytes"),
		recoveryNS:   reg.Gauge("wal.recovery_ns"),
		replayed:     reg.Gauge("wal.records_replayed"),
	}
}

func (m *metrics) observeAppend(d time.Duration, n int) {
	if m == nil {
		return
	}
	m.appendNS.Observe(d)
	m.bytes.Add(int64(n))
}

func (m *metrics) observeFsync(d time.Duration) {
	if m == nil {
		return
	}
	m.fsyncNS.Observe(d)
}

func (m *metrics) observeCheckpoint(d time.Duration) {
	if m == nil {
		return
	}
	m.checkpointNS.Observe(d)
}

func (m *metrics) observeRecovery(d time.Duration, records int) {
	if m == nil {
		return
	}
	m.recoveryNS.Set(int64(d))
	m.replayed.Set(int64(records))
}
