package algebra

import "hash/fnv"

// PlanFingerprint returns a stable 64-bit fingerprint of a plan's
// logical shape: its operator tree (via the deterministic String
// rendering every Plan provides) and its output schema. Two plans with
// the same fingerprint compute the same query over the same column
// layout, so prepared-plan caches (dra.Prepared) can use it as an
// identity across re-registrations without retaining the plan itself.
func PlanFingerprint(p Plan) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(p.String()))
	_, _ = h.Write([]byte{0})
	for _, c := range p.Schema().Columns() {
		_, _ = h.Write([]byte(c.Name))
		_, _ = h.Write([]byte{0, byte(c.Type)})
	}
	return h.Sum64()
}
