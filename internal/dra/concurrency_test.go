package dra

import (
	"sync"
	"testing"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
)

// collidingRows returns two distinct value slices whose HashValues
// collide. The string encoding writes (kind, bytes..., 0xff) per value,
// so shifting the boundary between adjacent strings — with the payload
// carrying the separator and kind bytes — yields the same byte stream:
// ["a", "b\xff\x03c"] and ["a\xff\x03b", "c"] both hash the stream
// 3 'a' ff 3 'b' ff 3 'c' ff.
func collidingRows() (a, b []relation.Value) {
	a = []relation.Value{relation.Str("a"), relation.Str("b\xff\x03c")}
	b = []relation.Value{relation.Str("a\xff\x03b"), relation.Str("c")}
	return a, b
}

func TestNetSignedHashCollision(t *testing.T) {
	a, b := collidingRows()
	if relation.HashValues(a) != relation.HashValues(b) {
		t.Fatal("fixture rows no longer collide; rebuild them against the current HashValues encoding")
	}
	if sameValues(a, b) {
		t.Fatal("fixture rows must be distinct values")
	}

	schema := relation.MustSchema(
		relation.Column{Name: "x", Type: relation.TString},
		relation.Column{Name: "y", Type: relation.TString},
	)
	// A modification from row a to row b under one tid: bucketing by
	// hash alone merged the two counts (-1 +1 = 0) and silently dropped
	// the change.
	in := &delta.Signed{Schema: schema, Rows: []delta.SignedRow{
		{TID: 7, Values: a, Sign: -1},
		{TID: 7, Values: b, Sign: +1},
	}}
	out := netSigned(in)
	if len(out.Rows) != 2 {
		t.Fatalf("netSigned folded colliding distinct rows: got %d rows, want 2\n%+v", len(out.Rows), out.Rows)
	}
	if out.Rows[0].Sign != -1 || !sameValues(out.Rows[0].Values, a) {
		t.Errorf("first row = %+v, want -1 x %v", out.Rows[0], a)
	}
	if out.Rows[1].Sign != +1 || !sameValues(out.Rows[1].Values, b) {
		t.Errorf("second row = %+v, want +1 x %v", out.Rows[1], b)
	}

	// Sanity: rows that really are equal still cancel.
	canceled := netSigned(&delta.Signed{Schema: schema, Rows: []delta.SignedRow{
		{TID: 9, Values: a, Sign: -1},
		{TID: 9, Values: a, Sign: +1},
	}})
	if len(canceled.Rows) != 0 {
		t.Fatalf("equal rows must net to zero, got %+v", canceled.Rows)
	}
}

// TestConcurrentReevaluateSharedEngine drives one engine from many
// goroutines over the same context, as the cq scheduler's refresh
// workers do. Run under -race this is the regression test for the
// stats be shared mutable engine state; the assertions check every concurrent
// call still computes the serial answer.
func TestConcurrentReevaluateSharedEngine(t *testing.T) {
	f := newFixture(t, map[string]relation.Schema{"stocks": stockSchema()})
	tids := f.insert(t, "stocks",
		sv("DEC", 150), sv("QLI", 145), sv("IBM", 75), sv("MAC", 117), sv("SUN", 130))
	plan := f.plan(t, "SELECT * FROM stocks WHERE price > 120")
	prev, err := InitialResult(plan, f.store.Live())
	if err != nil {
		t.Fatal(err)
	}
	f.mark()

	tx := f.store.Begin()
	if err := tx.Update("stocks", tids[0], sv("DEC", 149)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("stocks", tids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Insert("stocks", sv("HAL", 122)); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	ctx := f.ctx(t)
	ctx.Prev = prev
	execTS := f.store.Now()

	e := NewEngine()
	ref, err := e.Reevaluate(plan, ctx, execTS)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := e.Reevaluate(plan, ctx, execTS)
				if err != nil {
					errs[w] = err
					return
				}
				if len(res.Signed.Rows) != len(ref.Signed.Rows) {
					errs[w] = errMismatch(len(res.Signed.Rows), len(ref.Signed.Rows))
					return
				}
				if res.Stats.DeltaRows != ref.Stats.DeltaRows || res.Stats.Terms != ref.Stats.Terms {
					errs[w] = errMismatch(res.Stats.DeltaRows, ref.Stats.DeltaRows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", w, err)
		}
	}
}

type mismatchErr struct{ got, want int }

func (e mismatchErr) Error() string { return "concurrent result diverged from serial reference" }

func errMismatch(got, want int) error { return mismatchErr{got, want} }
