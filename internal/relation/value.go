// Package relation implements the relational substrate used throughout the
// continual query system: typed values, schemas, tuples with stable tuple
// identifiers (tids), and materialized relations with hash indexes and set
// operations.
//
// The paper describes differential relations and the DRA algorithm in
// relational terms (Section 4); this package provides exactly that model.
// Tuples carry tids because differential relations key their rows on tid
// (Section 4.1: "No tid can appear in multiple rows").
package relation

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates the value types supported by the engine.
type Type int

// Supported column types.
const (
	TInt Type = iota + 1
	TFloat
	TString
	TBool
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single typed, nullable value. The zero Value is the SQL NULL
// of no particular type.
type Value struct {
	Kind Type
	Null bool

	i int64
	f float64
	s string
	b bool
}

// Null value constructor.
func NullValue() Value { return Value{Null: true} }

// TypedNull returns a NULL tagged with a type, used for the empty halves of
// differential relation rows.
func TypedNull(t Type) Value { return Value{Kind: t, Null: true} }

// Int wraps an int64.
func Int(v int64) Value { return Value{Kind: TInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{Kind: TFloat, f: v} }

// String wraps a string. (Shadowing fmt.Stringer is intentional and local.)
func Str(v string) Value { return Value{Kind: TString, s: v} }

// Bool wraps a bool.
func Bool(v bool) Value { return Value{Kind: TBool, b: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Null }

// AsInt returns the integer payload. It is valid only for TInt values.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the value as a float64, converting integers.
func (v Value) AsFloat() float64 {
	if v.Kind == TInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload. It is valid only for TString values.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is valid only for TBool values.
func (v Value) AsBool() bool { return v.b }

// IsNumeric reports whether the value is of a numeric type.
func (v Value) IsNumeric() bool { return v.Kind == TInt || v.Kind == TFloat }

// Equal reports deep equality; NULLs are equal only to NULLs of any type.
func (v Value) Equal(o Value) bool {
	if v.Null || o.Null {
		return v.Null && o.Null
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.Kind == TInt && o.Kind == TInt {
			return v.i == o.i
		}
		return v.AsFloat() == o.AsFloat()
	}
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case TString:
		return v.s == o.s
	case TBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders two values: -1, 0 or +1. NULL sorts before everything.
// Comparing incompatible kinds orders by kind, so sorting is total.
func (v Value) Compare(o Value) int {
	switch {
	case v.Null && o.Null:
		return 0
	case v.Null:
		return -1
	case o.Null:
		return 1
	}
	if v.IsNumeric() && o.IsNumeric() {
		if v.Kind == TInt && o.Kind == TInt {
			switch {
			case v.i < o.i:
				return -1
			case v.i > o.i:
				return 1
			}
			return 0
		}
		a, b := v.AsFloat(), o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.Kind != o.Kind {
		if v.Kind < o.Kind {
			return -1
		}
		return 1
	}
	switch v.Kind {
	case TString:
		switch {
		case v.s < o.s:
			return -1
		case v.s > o.s:
			return 1
		}
		return 0
	case TBool:
		switch {
		case !v.b && o.b:
			return -1
		case v.b && !o.b:
			return 1
		}
		return 0
	}
	return 0
}

// Hash folds the value into h (an FNV-1a stream).
func (v Value) hashInto(h *fnvState) {
	if v.Null {
		h.writeByte(0)
		return
	}
	h.writeByte(byte(v.Kind))
	switch v.Kind {
	case TInt:
		h.writeUint64(uint64(v.i))
	case TFloat:
		h.writeUint64(math.Float64bits(v.f))
	case TString:
		h.writeString(v.s)
	case TBool:
		if v.b {
			h.writeByte(1)
		} else {
			h.writeByte(2)
		}
	}
}

// String renders the value for display.
func (v Value) String() string {
	if v.Null {
		return "-"
	}
	switch v.Kind {
	case TInt:
		return strconv.FormatInt(v.i, 10)
	case TFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TString:
		return v.s
	case TBool:
		return strconv.FormatBool(v.b)
	default:
		return "?"
	}
}

// fnvState is a tiny allocation-free FNV-1a hasher used for tuple and key
// hashing on hot paths.
type fnvState struct{ h uint64 }

func newFNV() *fnvState { return &fnvState{h: 1469598103934665603} }

func (f *fnvState) writeByte(b byte) {
	f.h ^= uint64(b)
	f.h *= 1099511628211
}

func (f *fnvState) writeUint64(v uint64) {
	for i := 0; i < 8; i++ {
		f.writeByte(byte(v >> (8 * i)))
	}
}

func (f *fnvState) writeString(s string) {
	for i := 0; i < len(s); i++ {
		f.writeByte(s[i])
	}
	f.writeByte(0xff) // separator so ("a","b") != ("ab","")
}

func (f *fnvState) sum() uint64 { return f.h }

// HashValues hashes a slice of values; used for derived-tuple identity and
// join keys.
func HashValues(vs []Value) uint64 {
	h := newFNV()
	for _, v := range vs {
		v.hashInto(h)
	}
	return h.sum()
}

// CombineTIDs derives the tid of a joined tuple from its parents' tids,
// so join results have stable, provenance-based identity.
func CombineTIDs(a, b TID) TID {
	h := newFNV()
	h.writeUint64(uint64(a))
	h.writeUint64(uint64(b))
	return TID(h.sum())
}
