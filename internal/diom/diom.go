// Package diom implements the Distributed Interoperable Object Model
// substrate the paper builds on (Sections 1 and 5.5): a mediator that
// integrates heterogeneous information sources by translating their
// updates into differential relations and feeding them to the continual
// query system.
//
// "For those information sources other than relational databases, simple
// translators (as part of the DIOM services) will be used to extract the
// updates in the form of differential relations. For example, file
// system updates can be captured by either operating system or
// middleware and translated into a differential relation and fed into
// DRA."
//
// Three translators are provided: FeedSource (an append-only document or
// ticker feed), FileSource (a directory of files, diffed by polling —
// the middleware capture of the quote above), and TableSource (another
// relational store, replicated by shipping its deltas).
package diom

import (
	"errors"
	"fmt"
	"sync"

	"github.com/diorama/continual/internal/delta"
	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/storage"
	"github.com/diorama/continual/internal/vclock"
)

// Errors returned by the mediator.
var (
	ErrDuplicateSource = errors.New("diom: source already registered")
	ErrNoSuchSource    = errors.New("diom: no such source")
)

// Update is one source-level change, already in differential form: Old
// nil for an insertion, New nil for a deletion, both set for a
// modification. Key identifies the external object; the mediator maps
// keys to tids.
type Update struct {
	Key string
	Old []relation.Value
	New []relation.Value
}

// Source is an information producer wrapped by a translator. Poll
// returns the changes since the previous Poll; the first Poll returns
// the full current state as insertions.
type Source interface {
	// Name identifies the source; its table in the mediated store is
	// named after it.
	Name() string
	// Schema describes the rows the source produces.
	Schema() relation.Schema
	// Poll extracts the updates since the last call.
	Poll() ([]Update, error)
}

// Mediator registers sources, materializes one table per source in the
// backing store, and pumps source updates into it transactionally — the
// commit path generates the differential relations DRA consumes.
type Mediator struct {
	store *storage.Store

	mu      sync.Mutex
	sources map[string]Source
	keyTID  map[string]map[string]relation.TID // source -> key -> tid
}

// NewMediator wraps a store.
func NewMediator(store *storage.Store) *Mediator {
	return &Mediator{
		store:   store,
		sources: make(map[string]Source),
		keyTID:  make(map[string]map[string]relation.TID),
	}
}

// Store exposes the mediated store (for attaching a CQ manager).
func (m *Mediator) Store() *storage.Store { return m.store }

// RegisterSource creates the source's table and records the source. Call
// PumpOnce to load its initial state.
func (m *Mediator) RegisterSource(src Source) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name := src.Name()
	if _, dup := m.sources[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateSource, name)
	}
	if err := m.store.CreateTable(name, src.Schema()); err != nil {
		return fmt.Errorf("diom: %w", err)
	}
	m.sources[name] = src
	m.keyTID[name] = make(map[string]relation.TID)
	return nil
}

// Sources lists registered source names.
func (m *Mediator) Sources() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.sources))
	for n := range m.sources {
		names = append(names, n)
	}
	return names
}

// PumpOnce polls every source and applies its updates in one transaction
// per source. It returns the total number of update rows applied.
func (m *Mediator) PumpOnce() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for name, src := range m.sources {
		n, err := m.pumpSource(name, src)
		if err != nil {
			return total, fmt.Errorf("diom: pump %q: %w", name, err)
		}
		total += n
	}
	return total, nil
}

// PumpSource polls a single source.
func (m *Mediator) PumpSource(name string) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	src, ok := m.sources[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoSuchSource, name)
	}
	n, err := m.pumpSource(name, src)
	if err != nil {
		return 0, fmt.Errorf("diom: pump %q: %w", name, err)
	}
	return n, nil
}

func (m *Mediator) pumpSource(name string, src Source) (int, error) {
	updates, err := src.Poll()
	if err != nil {
		return 0, err
	}
	if len(updates) == 0 {
		return 0, nil
	}
	keys := m.keyTID[name]
	tx := m.store.Begin()
	for _, u := range updates {
		switch {
		case u.Old == nil && u.New == nil:
			tx.Abort()
			return 0, fmt.Errorf("update for key %q has neither old nor new values", u.Key)
		case u.Old == nil: // insertion
			tid, err := tx.Insert(name, u.New)
			if err != nil {
				tx.Abort()
				return 0, err
			}
			keys[u.Key] = tid
		case u.New == nil: // deletion
			tid, ok := keys[u.Key]
			if !ok {
				tx.Abort()
				return 0, fmt.Errorf("delete for unknown key %q", u.Key)
			}
			if err := tx.Delete(name, tid); err != nil {
				tx.Abort()
				return 0, err
			}
			delete(keys, u.Key)
		default: // modification
			tid, ok := keys[u.Key]
			if !ok {
				tx.Abort()
				return 0, fmt.Errorf("modify for unknown key %q", u.Key)
			}
			if err := tx.Update(name, tid, u.New); err != nil {
				tx.Abort()
				return 0, err
			}
		}
	}
	if _, err := tx.Commit(); err != nil {
		return 0, err
	}
	return len(updates), nil
}

// Delta re-exports the differential relation of a source's table; the
// mediator is the point where "each server only generates delta relations
// when communicating with the clients" (Section 5.1).
func (m *Mediator) Delta(source string, since vclock.Timestamp) (*delta.Delta, error) {
	return m.store.DeltaSince(source, since)
}
