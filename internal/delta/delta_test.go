package delta

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/diorama/continual/internal/relation"
	"github.com/diorama/continual/internal/vclock"
)

func stockSchema() relation.Schema {
	return relation.MustSchema(
		relation.Column{Name: "tid", Type: relation.TInt},
		relation.Column{Name: "name", Type: relation.TString},
		relation.Column{Name: "price", Type: relation.TFloat},
	)
}

func row(tid int64, name string, price float64) []relation.Value {
	return []relation.Value{relation.Int(tid), relation.Str(name), relation.Float(price)}
}

// TestExample1 reproduces Example 1 of the paper exactly: transaction T
// inserts (101088, MAC, 117), modifies (120992, DEC, 150) to
// (120992, DEC, 149), and deletes tuple 092394. The insertions view must
// contain the inserted MAC tuple and the new DEC value; the deletions view
// must contain the deleted QLI tuple and the old DEC value.
func TestExample1(t *testing.T) {
	d := New(stockSchema())
	if err := d.AppendInsert(101088, row(101088, "MAC", 117), 10); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendModify(120992, row(120992, "DEC", 150), row(120992, "DEC", 149), 10); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendDelete(92394, row(92394, "QLI", 145), 10); err != nil {
		t.Fatal(err)
	}

	ins := d.Insertions()
	if ins.Len() != 2 {
		t.Fatalf("insertions len = %d, want 2\n%s", ins.Len(), ins)
	}
	mac, ok := ins.Lookup(101088)
	if !ok || mac.Values[2].AsFloat() != 117 {
		t.Errorf("insertions missing MAC@117: %v %v", mac, ok)
	}
	dec, ok := ins.Lookup(120992)
	if !ok || dec.Values[2].AsFloat() != 149 {
		t.Errorf("insertions missing DEC@149 (new half of modification): %v %v", dec, ok)
	}

	del := d.Deletions()
	if del.Len() != 2 {
		t.Fatalf("deletions len = %d, want 2\n%s", del.Len(), del)
	}
	qli, ok := del.Lookup(92394)
	if !ok || qli.Values[1].AsString() != "QLI" {
		t.Errorf("deletions missing QLI: %v %v", qli, ok)
	}
	decOld, ok := del.Lookup(120992)
	if !ok || decOld.Values[2].AsFloat() != 150 {
		t.Errorf("deletions missing DEC@150 (old half of modification): %v %v", decOld, ok)
	}
}

func TestAppendValidation(t *testing.T) {
	d := New(stockSchema())
	if err := d.Append(Row{TID: 1, TS: 1}); !errors.Is(err, ErrBadRow) {
		t.Errorf("nil/nil row err = %v", err)
	}
	if err := d.AppendInsert(1, []relation.Value{relation.Int(1)}, 1); !errors.Is(err, ErrArity) {
		t.Errorf("arity err = %v", err)
	}
	if err := d.AppendInsert(1, row(1, "A", 1), 5); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendInsert(2, row(2, "B", 2), 4); !errors.Is(err, ErrOrder) {
		t.Errorf("out-of-order err = %v", err)
	}
	if err := d.AppendInsert(2, row(2, "B", 2), 5); err != nil {
		t.Errorf("equal-ts append should be allowed: %v", err)
	}
}

func TestAfterWindow(t *testing.T) {
	d := New(stockSchema())
	for i := 1; i <= 10; i++ {
		if err := d.AppendInsert(relation.TID(i), row(int64(i), "X", float64(i)), vclock.Timestamp(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := d.After(0).Len(); got != 10 {
		t.Errorf("After(0) = %d", got)
	}
	if got := d.After(5).Len(); got != 5 {
		t.Errorf("After(5) = %d, want 5", got)
	}
	if got := d.After(10).Len(); got != 0 {
		t.Errorf("After(10) = %d", got)
	}
	w := d.Window(2, 7)
	if w.Len() != 5 || w.MinTS() != 3 || w.MaxTS() != 7 {
		t.Errorf("Window(2,7): len=%d min=%d max=%d", w.Len(), w.MinTS(), w.MaxTS())
	}
}

func TestInsertionsNetsOutInsertThenDelete(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 1), 1)
	_ = d.AppendDelete(1, row(1, "A", 1), 2)
	if got := d.Insertions().Len(); got != 0 {
		t.Errorf("insert-then-delete should net out of insertions view, got %d", got)
	}
	if got := d.Deletions().Len(); got != 0 {
		t.Errorf("tuple born and dead inside window should not appear in deletions, got %d", got)
	}
}

func TestDeletionsKeepsFirstOldValue(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendModify(1, row(1, "A", 10), row(1, "A", 20), 1)
	_ = d.AppendModify(1, row(1, "A", 20), row(1, "A", 30), 2)
	del := d.Deletions()
	tu, ok := del.Lookup(1)
	if !ok || tu.Values[2].AsFloat() != 10 {
		t.Errorf("deletions should hold first old value 10, got %v", tu)
	}
	ins := d.Insertions()
	tu, ok = ins.Lookup(1)
	if !ok || tu.Values[2].AsFloat() != 30 {
		t.Errorf("insertions should hold last new value 30, got %v", tu)
	}
}

func TestApplyUnapplyRoundTrip(t *testing.T) {
	base := relation.New(stockSchema())
	_ = base.Insert(relation.Tuple{TID: 100000, Values: row(100000, "DEC", 150)})
	_ = base.Insert(relation.Tuple{TID: 92394, Values: row(92394, "QLI", 145)})

	d := New(stockSchema())
	_ = d.AppendInsert(101088, row(101088, "MAC", 117), 1)
	_ = d.AppendModify(100000, row(100000, "DEC", 150), row(100000, "DEC", 149), 2)
	_ = d.AppendDelete(92394, row(92394, "QLI", 145), 3)

	post := base.Clone()
	if err := d.Apply(post); err != nil {
		t.Fatal(err)
	}
	if post.Len() != 2 || !post.Has(101088) || post.Has(92394) {
		t.Fatalf("post state wrong:\n%s", post)
	}
	dec, _ := post.Lookup(100000)
	if dec.Values[2].AsFloat() != 149 {
		t.Error("modify not applied")
	}

	back := post.Clone()
	if err := d.Unapply(back); err != nil {
		t.Fatal(err)
	}
	if !back.EqualByTID(base) {
		t.Errorf("Unapply(Apply(R)) != R:\n%s\nvs\n%s", back, base)
	}
}

func TestApplyErrorsOnBadReplay(t *testing.T) {
	base := relation.New(stockSchema())
	d := New(stockSchema())
	_ = d.AppendDelete(42, row(42, "X", 1), 1)
	if err := d.Apply(base); !errors.Is(err, ErrReplay) {
		t.Errorf("deleting absent tid should ErrReplay, got %v", err)
	}
}

func TestDiffComputesMinimalDelta(t *testing.T) {
	a := relation.New(stockSchema())
	_ = a.Insert(relation.Tuple{TID: 1, Values: row(1, "A", 10)})
	_ = a.Insert(relation.Tuple{TID: 2, Values: row(2, "B", 20)})
	_ = a.Insert(relation.Tuple{TID: 3, Values: row(3, "C", 30)})
	b := relation.New(stockSchema())
	_ = b.Insert(relation.Tuple{TID: 1, Values: row(1, "A", 10)}) // unchanged
	_ = b.Insert(relation.Tuple{TID: 2, Values: row(2, "B", 25)}) // modified
	_ = b.Insert(relation.Tuple{TID: 4, Values: row(4, "D", 40)}) // inserted

	d, err := Diff(a, b, 7)
	if err != nil {
		t.Fatal(err)
	}
	ins, del, mod := d.Counts()
	if ins != 1 || del != 1 || mod != 1 {
		t.Fatalf("Counts = %d/%d/%d, want 1/1/1", ins, del, mod)
	}
	// Applying the diff to a clone of a must produce b.
	c := a.Clone()
	if err := d.Apply(c); err != nil {
		t.Fatal(err)
	}
	if !c.EqualByTID(b) {
		t.Error("Diff(a,b) applied to a does not yield b")
	}
}

func TestCompactFoldsNetEffects(t *testing.T) {
	d := New(stockSchema())
	// tid 1: insert then modify -> net insert of final value
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	_ = d.AppendModify(1, row(1, "A", 10), row(1, "A", 15), 2)
	// tid 2: insert then delete -> net nothing
	_ = d.AppendInsert(2, row(2, "B", 20), 3)
	_ = d.AppendDelete(2, row(2, "B", 20), 4)
	// tid 3: modify then modify -> net single modify
	_ = d.AppendModify(3, row(3, "C", 30), row(3, "C", 31), 5)
	_ = d.AppendModify(3, row(3, "C", 31), row(3, "C", 32), 6)
	// tid 4: modify back to original -> net nothing
	_ = d.AppendModify(4, row(4, "D", 40), row(4, "D", 41), 7)
	_ = d.AppendModify(4, row(4, "D", 41), row(4, "D", 40), 8)
	// tid 5: delete then insert (same tid reused) -> net modify
	_ = d.AppendDelete(5, row(5, "E", 50), 9)
	_ = d.AppendInsert(5, row(5, "E", 55), 10)

	c := d.Compact()
	if c.Len() != 3 {
		t.Fatalf("Compact len = %d, want 3:\n%s", c.Len(), c)
	}
	ins, del, mod := c.Counts()
	if ins != 1 || del != 0 || mod != 2 {
		t.Fatalf("Compact counts = %d/%d/%d, want 1/0/2", ins, del, mod)
	}
}

// Property: for any base relation and any valid random update sequence,
// Apply(Compact(Δ)) produces the same state as Apply(Δ).
func TestCompactEquivalentToFullReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		base := relation.New(stockSchema())
		next := relation.TID(1)
		for i := 0; i < 20; i++ {
			_ = base.Insert(relation.Tuple{TID: next, Values: row(int64(next), "S", float64(rng.Intn(100)))})
			next++
		}
		d := New(stockSchema())
		shadow := base.Clone()
		clock := vclock.New()
		for i := 0; i < 60; i++ {
			ts := clock.Tick()
			switch op := rng.Intn(3); {
			case op == 0: // insert
				tid := next
				next++
				vs := row(int64(tid), "S", float64(rng.Intn(100)))
				_ = d.AppendInsert(tid, vs, ts)
				_ = shadow.Insert(relation.Tuple{TID: tid, Values: vs})
			case op == 1 && shadow.Len() > 0: // delete random live tuple
				victim := shadow.At(rng.Intn(shadow.Len()))
				_ = d.AppendDelete(victim.TID, victim.Values, ts)
				_ = shadow.Delete(victim.TID)
			case op == 2 && shadow.Len() > 0: // modify random live tuple
				victim := shadow.At(rng.Intn(shadow.Len()))
				nv := row(victim.Values[0].AsInt(), "S", float64(rng.Intn(100)))
				_ = d.AppendModify(victim.TID, victim.Values, nv, ts)
				_ = shadow.Update(victim.TID, nv)
			}
		}
		full := base.Clone()
		if err := d.Apply(full); err != nil {
			t.Fatalf("trial %d: full replay: %v", trial, err)
		}
		compacted := base.Clone()
		if err := d.Compact().Apply(compacted); err != nil {
			t.Fatalf("trial %d: compacted replay: %v", trial, err)
		}
		if !full.EqualByTID(compacted) {
			t.Fatalf("trial %d: compacted state differs from full replay", trial)
		}
		if !full.EqualByTID(shadow) {
			t.Fatalf("trial %d: replay differs from shadow state", trial)
		}
	}
}

func TestTruncateBefore(t *testing.T) {
	d := New(stockSchema())
	for i := 1; i <= 10; i++ {
		_ = d.AppendInsert(relation.TID(i), row(int64(i), "X", 1), vclock.Timestamp(i))
	}
	if n := d.TruncateBefore(0); n != 0 {
		t.Errorf("TruncateBefore(0) dropped %d", n)
	}
	if n := d.TruncateBefore(4); n != 4 {
		t.Errorf("TruncateBefore(4) dropped %d, want 4", n)
	}
	if d.Len() != 6 || d.MinTS() != 5 {
		t.Errorf("after truncate: len=%d min=%d", d.Len(), d.MinTS())
	}
	if n := d.TruncateBefore(100); n != 6 || d.Len() != 0 {
		t.Errorf("full truncate dropped %d, len=%d", n, d.Len())
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := New(stockSchema())
	_ = d.AppendInsert(1, row(1, "A", 10), 1)
	c := d.Clone()
	c.Rows()[0].New[2] = relation.Float(999)
	if d.Rows()[0].New[2].AsFloat() == 999 {
		t.Error("Clone shares value storage")
	}
}
